package fuzzgen

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// WriteArtifact persists a (typically shrunken) failure as a repro artifact
// set in dir:
//
//	seed<seed>-<stage>.mini     minimized program, with a repro header
//	seed<seed>-<stage>.ref.txt  reference console
//	seed<seed>-<stage>.got.txt  diverging console (empty on execution error)
//
// It returns the .mini path.
func WriteArtifact(dir string, f *Failure) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	base := fmt.Sprintf("seed%d-%s", f.Seed, f.Stage)

	var hdr strings.Builder
	fmt.Fprintf(&hdr, "// fuzzgen repro: seed %d diverged at stage %q\n", f.Seed, f.Stage)
	if f.Err != nil {
		fmt.Fprintf(&hdr, "// error: %v\n", f.Err)
	}
	if f.Detail != "" {
		fmt.Fprintf(&hdr, "// detail: %s\n", f.Detail)
	}
	fmt.Fprintf(&hdr, "// re-run: go run ./cmd/ftvm-fuzz -seeds 1 -start %d -size %s -mode %s\n", f.Seed, f.Size, f.Stage)
	fmt.Fprintf(&hdr, "// deterministic sim: go run ./cmd/ftvm-sim -replay %q\n", SimReplayKey(f))
	mini := filepath.Join(dir, base+".mini")
	if err := os.WriteFile(mini, []byte(hdr.String()+f.Source), 0o644); err != nil {
		return "", err
	}
	lines := func(ls []string) []byte {
		if len(ls) == 0 {
			return nil
		}
		return []byte(strings.Join(ls, "\n") + "\n")
	}
	if err := os.WriteFile(filepath.Join(dir, base+".ref.txt"), lines(f.Ref), 0o644); err != nil {
		return "", err
	}
	if err := os.WriteFile(filepath.Join(dir, base+".got.txt"), lines(f.Got), 0o644); err != nil {
		return "", err
	}
	return mini, nil
}

// Report shrinks the failure, writes artifacts when c.ArtifactDir is set, and
// returns a human-readable summary — the one-stop path from "a seed failed"
// to "here is the minimized repro".
func (c *Config) Report(p *Prog, f *Failure) string {
	_, sf := c.Shrink(p, f, 0)
	var b strings.Builder
	fmt.Fprintf(&b, "%v\n", sf)
	fmt.Fprintf(&b, "program shrunk to %d lines\n", strings.Count(sf.Source, "\n"))
	fmt.Fprintf(&b, "deterministic sim: go run ./cmd/ftvm-sim -replay %q\n", SimReplayKey(sf))
	if c.ArtifactDir != "" {
		if mini, err := WriteArtifact(c.ArtifactDir, sf); err != nil {
			fmt.Fprintf(&b, "artifact write failed: %v\n", err)
		} else {
			fmt.Fprintf(&b, "repro written to %s\n", mini)
		}
	}
	return b.String()
}
