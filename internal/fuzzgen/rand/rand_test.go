package rand

import "testing"

// TestKnownAnswer pins the SplitMix64 sequence to the reference vectors from
// the original splitmix64.c (seed 0 and the golden-ratio increment). Every
// consumer in the repo (scheduling jitter, fuzzers) depends on these exact
// values staying put: a silent sequence change would re-map every "failing
// seed" ever recorded.
func TestKnownAnswer(t *testing.T) {
	r := New(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
		0xf88bb8a8724c81ec,
		0x1b39896a51a8749b,
	}
	for i, w := range want {
		if got := r.Next(); got != w {
			t.Fatalf("Next()[%d] = %#x, want %#x", i, got, w)
		}
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r RNG
	if got := r.Next(); got != 0xe220a8397b1dcdaf {
		t.Fatalf("zero-value RNG first output = %#x", got)
	}
}

func TestBounds(t *testing.T) {
	r := New(42)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		if v := r.Range(-3, 3); v < -3 || v > 3 {
			t.Fatalf("Range(-3,3) = %d", v)
		}
		if v := r.Int63(); v < 0 {
			t.Fatalf("Int63() = %d", v)
		}
	}
	if r.Chance(0, 10) {
		t.Fatal("Chance(0,10) fired")
	}
	if !r.Chance(10, 10) {
		t.Fatal("Chance(10,10) did not fire")
	}
}

func TestForkIndependence(t *testing.T) {
	a := New(99)
	b := New(99)
	fa := a.Fork()
	fb := b.Fork()
	for i := 0; i < 10; i++ {
		if fa.Next() != fb.Next() {
			t.Fatal("forks of identical parents disagree")
		}
	}
	// The fork consumed one parent output; parents stay in lockstep.
	if a.Next() != b.Next() {
		t.Fatal("parents diverged after forking")
	}
}
