// Package rand is the repository's shared deterministic PRNG: SplitMix64
// (Steele, Lea, Flood; "Fast Splittable Pseudorandom Number Generators").
// One implementation serves every consumer that needs reproducible,
// seed-addressable randomness — the scheduling policy's preemption jitter
// (vm.SeededPolicy), the expression fuzzer in minilang, and the whole-program
// generator in fuzzgen — so that "the failing seed" means the same thing
// everywhere. It is intentionally not cryptographic and intentionally not
// math/rand: the full state is one word, sequences are identical across
// platforms and Go releases, and there is no global locking.
package rand

const golden = 0x9e3779b97f4a7c15 // 2^64 / φ, the Weyl sequence increment

// RNG is a SplitMix64 generator. The zero value is a valid generator seeded
// with 0.
type RNG struct{ state uint64 }

// New returns a generator whose first output is determined by seed. The
// state is the seed itself (no pre-mixing), so callers that historically
// XOR-folded their seeds keep byte-identical sequences.
func New(seed uint64) *RNG { return &RNG{state: seed} }

// Next returns the next 64-bit value.
func (r *RNG) Next() uint64 {
	r.state += golden
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 returns a non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Next() >> 1) }

// Intn returns a value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int { return int(r.Next() % uint64(n)) }

// Range returns a value in [lo, hi]. hi must be >= lo.
func (r *RNG) Range(lo, hi int) int { return lo + r.Intn(hi-lo+1) }

// Bool returns a fair coin flip.
func (r *RNG) Bool() bool { return r.Next()&1 == 1 }

// Chance returns true with probability num/den.
func (r *RNG) Chance(num, den int) bool { return r.Intn(den) < num }

// Fork derives an independent generator from the current one, consuming one
// output. Forked streams let one seed drive several consumers without their
// draw counts interfering.
func (r *RNG) Fork() *RNG { return New(r.Next()) }

// Clone returns a generator at the same stream position: both produce the
// identical future sequence. Used by checkpoint snapshots, which must
// preserve every PRNG's position so a resumed copy replays byte-identically.
func (r *RNG) Clone() *RNG { return &RNG{state: r.state} }
