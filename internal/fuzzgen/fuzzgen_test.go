package fuzzgen

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	ftvm "repro"
)

// TestGenerateDeterministic pins the generator contract: the same (seed,
// size) pair renders byte-identical source.
func TestGenerateDeterministic(t *testing.T) {
	for _, size := range []Size{SizeSmall, SizeMedium, SizeLarge} {
		for seed := uint64(0); seed < 20; seed++ {
			a := Generate(seed, size).Render()
			b := Generate(seed, size).Render()
			if a != b {
				t.Fatalf("seed %d size %v: non-deterministic render", seed, size)
			}
		}
	}
}

// TestGeneratedProgramsCompile is the cheap front line: every generated
// program must be valid minilang.
func TestGeneratedProgramsCompile(t *testing.T) {
	for _, size := range []Size{SizeSmall, SizeMedium, SizeLarge} {
		for seed := uint64(0); seed < 60; seed++ {
			src := Generate(seed, size).Render()
			if _, err := ftvm.CompileSource("gen", src); err != nil {
				t.Fatalf("seed %d size %v: compile: %v\nsource:\n%s", seed, size, err, src)
			}
		}
	}
}

// TestCloneIsDeep guards the shrinker's foundation: edits to a clone must
// never leak into the original.
func TestCloneIsDeep(t *testing.T) {
	p := Generate(7, SizeMedium)
	orig := p.Render()
	cp := p.Clone()
	cp.Spawns = cp.Spawns[:1]
	cp.Gate = false
	removeStmts(cp, func(Stmt) bool { return true })
	for _, g := range cp.Globals {
		g.Init = 999
	}
	if p.Render() != orig {
		t.Fatal("mutating a clone changed the original program")
	}
}

// TestDifferentialSmoke is the CI quota: ≥200 generated programs checked
// across all five stages (standalone re-schedule, replicated+replay,
// failover, consensus, dispatch cross-check) with zero divergences. Sharded
// for parallelism.
func TestDifferentialSmoke(t *testing.T) {
	const shards = 8
	seeds := 240
	if !testing.Short() {
		seeds = 480
	}
	for sh := 0; sh < shards; sh++ {
		sh := sh
		t.Run(fmt.Sprintf("shard%d", sh), func(t *testing.T) {
			t.Parallel()
			cfg := &Config{Size: SizeSmall, ArtifactDir: "testdata/artifacts"}
			for seed := sh; seed < seeds; seed += shards {
				p := Generate(uint64(seed), cfg.Size)
				if f := cfg.CheckProg(p, nil); f != nil {
					t.Fatalf("seed %d diverged:\n%s", seed, cfg.Report(p, f))
				}
			}
		})
	}
}

// TestDifferentialMediumLarge spot-checks the bigger size tiers (the soak
// binary's domain) without blowing up CI time.
func TestDifferentialMediumLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("medium/large tiers are covered by the soak binary; smoke uses small")
	}
	for _, size := range []Size{SizeMedium, SizeLarge} {
		size := size
		t.Run(size.String(), func(t *testing.T) {
			t.Parallel()
			cfg := &Config{Size: size, ArtifactDir: "testdata/artifacts"}
			for seed := uint64(0); seed < 12; seed++ {
				p := Generate(seed, size)
				if f := cfg.CheckProg(p, nil); f != nil {
					t.Fatalf("seed %d diverged:\n%s", seed, cfg.Report(p, f))
				}
			}
		})
	}
}

// TestInjectedDivergence wires a deliberately broken comparison into the
// harness (the failover stage's output is corrupted before comparison) and
// requires the full failure path to work: detection, greedy shrinking to a
// near-minimal program, and a repro artifact set on disk.
func TestInjectedDivergence(t *testing.T) {
	dir := t.TempDir()
	cfg := &Config{Size: SizeMedium, ArtifactDir: dir}
	cfg.tamper = func(stage string, lines []string) []string {
		if stage != StageFailover {
			return lines
		}
		out := append([]string(nil), lines...)
		for i, ln := range out {
			if ln == "m|end" {
				out[i] = "m|end-corrupted"
			}
		}
		return out
	}

	const seed = 11
	p := Generate(seed, cfg.Size)
	f := cfg.CheckProg(p, nil)
	if f == nil {
		t.Fatal("tampered harness reported agreement")
	}
	if f.Stage != StageFailover {
		t.Fatalf("failure stage = %q, want %q", f.Stage, StageFailover)
	}

	report := cfg.Report(p, f)
	if !strings.Contains(report, "repro written to") {
		t.Fatalf("report did not write an artifact:\n%s", report)
	}

	mini := filepath.Join(dir, fmt.Sprintf("seed%d-%s.mini", seed, StageFailover))
	src, err := os.ReadFile(mini)
	if err != nil {
		t.Fatalf("minimized repro: %v", err)
	}
	// The tamper only corrupts the "m|end" marker, so the shrinker must be
	// able to strip every thread and almost every statement while the
	// divergence persists: the minimized program is main-only and tiny.
	if strings.Contains(string(src), "spawn") {
		t.Fatalf("minimized repro still spawns threads:\n%s", src)
	}
	if n := strings.Count(string(src), "\n"); n > 20 {
		t.Fatalf("minimized repro is %d lines, want a near-minimal program:\n%s", n, src)
	}
	if !strings.Contains(string(src), "fuzzgen repro: seed 11") {
		t.Fatalf("missing repro header:\n%s", src)
	}
	for _, suffix := range []string{".ref.txt", ".got.txt"} {
		path := strings.TrimSuffix(mini, ".mini") + suffix
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("missing artifact %s: %v", path, err)
		}
	}
	got, _ := os.ReadFile(strings.TrimSuffix(mini, ".mini") + ".got.txt")
	if !strings.Contains(string(got), "m|end-corrupted") {
		t.Fatalf("diverging output not captured:\n%s", got)
	}
}

// TestShrinkRejectsUnrelatedFailures: a candidate that fails at a different
// stage (or stops failing) must not be accepted as "smaller".
func TestShrinkPreservesStage(t *testing.T) {
	cfg := &Config{Size: SizeSmall}
	cfg.tamper = func(stage string, lines []string) []string {
		if stage != StageReplicated {
			return lines
		}
		return append(append([]string(nil), lines...), "m|ghost")
	}
	p := Generate(3, cfg.Size)
	f := cfg.CheckProg(p, nil)
	if f == nil {
		t.Fatal("tampered harness reported agreement")
	}
	sp, sf := cfg.Shrink(p, f, 60)
	if sf.Stage != f.Stage {
		t.Fatalf("shrunk failure stage = %q, want %q", sf.Stage, f.Stage)
	}
	if got := cfg.CheckProg(sp, []string{sf.Stage}); got == nil {
		t.Fatal("shrunk program no longer reproduces the failure")
	}
}

func TestCompareFrames(t *testing.T) {
	ref := []string{"m|start", "w0|k1=5", "m|end", "w1|k2=7"}
	// Cross-writer reordering is legal.
	if d, ok := compareFrames(ref, []string{"w1|k2=7", "m|start", "w0|k1=5", "m|end"}); !ok {
		t.Fatalf("legal reorder flagged: %s", d)
	}
	// Per-writer reorder is a divergence.
	if _, ok := compareFrames(ref, []string{"m|end", "w0|k1=5", "m|start", "w1|k2=7"}); ok {
		t.Fatal("per-writer reorder not flagged")
	}
	// Missing frame is a divergence.
	if _, ok := compareFrames(ref, []string{"m|start", "m|end", "w1|k2=7"}); ok {
		t.Fatal("missing frame not flagged")
	}
	// Extra stream is a divergence.
	if _, ok := compareFrames(ref, append(append([]string(nil), ref...), "w9|k3=0")); ok {
		t.Fatal("extra stream not flagged")
	}
}

func TestSizeByName(t *testing.T) {
	for _, size := range []Size{SizeSmall, SizeMedium, SizeLarge} {
		got, err := SizeByName(size.String())
		if err != nil || got != size {
			t.Fatalf("SizeByName(%q) = %v, %v", size.String(), got, err)
		}
	}
	if _, err := SizeByName("jumbo"); err == nil {
		t.Fatal("SizeByName accepted an unknown size")
	}
}
