// Package fuzzgen is the whole-program differential fuzzer: a seeded
// generator of complete multi-threaded minilang programs plus a harness that
// runs each program standalone, replicated (with the backup's replayed
// output checked frame-by-frame), and through an injected primary failure
// (kill or channel fault) with the promoted backup finishing the run — and
// requires all of them to observably agree. On divergence it greedily
// shrinks the program and writes a minimized repro artifact.
//
// Generated programs are schedule-insensitive by construction, which is what
// makes the three-way comparison sound: every printed value is a pure
// function of the program text (thread-local state, constants), shared
// globals are updated only under a per-global fixed lock with a commutative
// operator (so the post-join total is interleaving-independent), shared
// array slots are written only by their owning thread, and non-deterministic
// natives (rand, clock) are drawn and discarded — they exercise the
// native-result logging machinery without leaking entropy into the output.
// Cross-thread print interleaving is legally schedule-dependent, so outputs
// are compared as sorted multisets across modes, and frame-by-frame per
// output stream for the backup's replay of a completed log.
package fuzzgen

import (
	"fmt"
	"strings"

	frand "repro/internal/fuzzgen/rand"
)

// Size selects how large generated programs are.
type Size int

// Program sizes.
const (
	SizeSmall  Size = iota // smoke-quota sized: a few threads, short loops
	SizeMedium             // soak default
	SizeLarge              // stress: more threads, deeper bodies
)

func (s Size) String() string {
	switch s {
	case SizeSmall:
		return "small"
	case SizeMedium:
		return "medium"
	case SizeLarge:
		return "large"
	default:
		return "invalid"
	}
}

// SizeByName parses a -size flag value.
func SizeByName(name string) (Size, error) {
	switch name {
	case "small":
		return SizeSmall, nil
	case "medium":
		return SizeMedium, nil
	case "large":
		return SizeLarge, nil
	}
	return 0, fmt.Errorf("unknown size %q (small, medium, large)", name)
}

type sizeParams struct {
	maxSpawns  int
	maxWorkers int
	maxStmts   int // per worker body
	maxLoop    int // per-loop iteration bound
	maxMainMid int
	maxGlobals int
}

func (s Size) params() sizeParams {
	switch s {
	case SizeMedium:
		return sizeParams{maxSpawns: 4, maxWorkers: 3, maxStmts: 10, maxLoop: 8, maxMainMid: 3, maxGlobals: 4}
	case SizeLarge:
		return sizeParams{maxSpawns: 6, maxWorkers: 4, maxStmts: 14, maxLoop: 10, maxMainMid: 4, maxGlobals: 5}
	default:
		return sizeParams{maxSpawns: 3, maxWorkers: 2, maxStmts: 7, maxLoop: 5, maxMainMid: 2, maxGlobals: 3}
	}
}

// Global is a shared int accumulator with a fixed commutative update
// operator and a fixed guarding lock — the pair that keeps its post-join
// value schedule-independent.
type Global struct {
	Name string
	Op   string // "+", "^" or "|"
	Init int64
	Lock int // index of the lock object guarding every update
}

// Worker is one spawned function body.
type Worker struct {
	Name string
	Body []Stmt
}

// Prog is the generated-program IR. The shrinker edits clones of it; Render
// turns it into minilang source.
type Prog struct {
	Seed    uint64
	Size    Size
	Globals []*Global
	NLocks  int
	Gate    bool // barrier gate: workers bump, awaiters wait for all bumps
	Slots   bool // shared []int with one owned slot per thread
	Workers []*Worker
	Spawns  []int // worker index per spawn; spawn i runs with self == i
	MainMid []Stmt
	Epi     []Stmt
}

// Stmt is a generated statement.
type Stmt interface{ cloneStmt() Stmt }

// Expr is a generated (deterministic, thread-local) int expression.
type Expr interface{ cloneExpr() Expr }

// Statements.

// DeclStmt declares a local int: var Name int = E;
type DeclStmt struct {
	Name string
	E    Expr
}

// AssignStmt assigns a local: Name = E;
type AssignStmt struct {
	Name string
	E    Expr
}

// ForStmt is a constant-bounded counting loop.
type ForStmt struct {
	Var  string
	N    int
	Body []Stmt
}

// IfStmt branches on a deterministic condition.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt // may be nil
}

// LockStmt is lock (lk<Lock>) { Body }; Body only updates globals guarded by
// this lock (and prints).
type LockStmt struct {
	Lock int
	Body []Stmt
}

// UpdStmt updates a global with its fixed operator: g = g OP (E);
type UpdStmt struct {
	Global *Global
	E      Expr
}

// PrintStmt prints a keyed, stream-tagged deterministic value.
type PrintStmt struct {
	Key string
	E   Expr
}

// MarkerStmt prints a fixed stream-tagged marker line.
type MarkerStmt struct{ Text string }

// PrintGlobalStmt prints a global (epilogue only, after all joins).
type PrintGlobalStmt struct{ Global *Global }

// SlotWriteStmt writes the current thread's owned slot: slots[self] = E
// (main owns the extra last slot).
type SlotWriteStmt struct{ E Expr }

// SlotDumpStmt prints every slot (epilogue only).
type SlotDumpStmt struct{}

// Native kinds for NativeStmt.
const (
	NativeRand      = iota // junk = rand();     draws a logged native result
	NativeClock            // junk = junk ^ clock();
	NativeYield            // yield;
	NativeLockTouch        // locktouch(lk<Lock>);
)

// NativeStmt exercises a native without leaking its value into the output.
type NativeStmt struct {
	Kind int
	Lock int // NativeLockTouch target
}

// BumpStmt is the gate barrier arrival (first statement of every worker when
// the gate is enabled).
type BumpStmt struct{}

// AwaitStmt blocks until every spawned worker has bumped; the threshold is
// computed at render time so dropping spawns keeps the program deadlock-free.
type AwaitStmt struct{}

// Expressions.

// Lit is an int literal.
type Lit struct{ V int64 }

// VarExpr reads an in-scope local (including self and loop counters).
type VarExpr struct{ Name string }

// BinExpr applies Op; for "/", "%", "<<", ">>" the Y side is a safe literal.
type BinExpr struct {
	Op   string
	X, Y Expr
}

// UnExpr applies "-" or "!".
type UnExpr struct {
	Op string
	X  Expr
}

// MixExpr calls the fixed helper func mix(a, b).
type MixExpr struct{ A, B Expr }

// Clones (deep copies for the shrinker).

func cloneStmts(in []Stmt) []Stmt {
	if in == nil {
		return nil
	}
	out := make([]Stmt, len(in))
	for i, s := range in {
		out[i] = s.cloneStmt()
	}
	return out
}

func (s *DeclStmt) cloneStmt() Stmt   { return &DeclStmt{Name: s.Name, E: s.E.cloneExpr()} }
func (s *AssignStmt) cloneStmt() Stmt { return &AssignStmt{Name: s.Name, E: s.E.cloneExpr()} }
func (s *ForStmt) cloneStmt() Stmt {
	return &ForStmt{Var: s.Var, N: s.N, Body: cloneStmts(s.Body)}
}
func (s *IfStmt) cloneStmt() Stmt {
	return &IfStmt{Cond: s.Cond.cloneExpr(), Then: cloneStmts(s.Then), Else: cloneStmts(s.Else)}
}
func (s *LockStmt) cloneStmt() Stmt { return &LockStmt{Lock: s.Lock, Body: cloneStmts(s.Body)} }
func (s *UpdStmt) cloneStmt() Stmt  { return &UpdStmt{Global: s.Global, E: s.E.cloneExpr()} }
func (s *PrintStmt) cloneStmt() Stmt {
	return &PrintStmt{Key: s.Key, E: s.E.cloneExpr()}
}
func (s *MarkerStmt) cloneStmt() Stmt      { return &MarkerStmt{Text: s.Text} }
func (s *PrintGlobalStmt) cloneStmt() Stmt { return &PrintGlobalStmt{Global: s.Global} }
func (s *SlotWriteStmt) cloneStmt() Stmt   { return &SlotWriteStmt{E: s.E.cloneExpr()} }
func (s *SlotDumpStmt) cloneStmt() Stmt    { return &SlotDumpStmt{} }
func (s *NativeStmt) cloneStmt() Stmt      { return &NativeStmt{Kind: s.Kind, Lock: s.Lock} }
func (s *BumpStmt) cloneStmt() Stmt        { return &BumpStmt{} }
func (s *AwaitStmt) cloneStmt() Stmt       { return &AwaitStmt{} }

func (e *Lit) cloneExpr() Expr     { return &Lit{V: e.V} }
func (e *VarExpr) cloneExpr() Expr { return &VarExpr{Name: e.Name} }
func (e *BinExpr) cloneExpr() Expr {
	return &BinExpr{Op: e.Op, X: e.X.cloneExpr(), Y: e.Y.cloneExpr()}
}
func (e *UnExpr) cloneExpr() Expr  { return &UnExpr{Op: e.Op, X: e.X.cloneExpr()} }
func (e *MixExpr) cloneExpr() Expr { return &MixExpr{A: e.A.cloneExpr(), B: e.B.cloneExpr()} }

// Clone deep-copies the program. Globals are cloned too so mutations of the
// copy never alias the original.
func (p *Prog) Clone() *Prog {
	cp := &Prog{
		Seed:   p.Seed,
		Size:   p.Size,
		NLocks: p.NLocks,
		Gate:   p.Gate,
		Slots:  p.Slots,
		Spawns: append([]int(nil), p.Spawns...),
	}
	remap := make(map[*Global]*Global, len(p.Globals))
	for _, g := range p.Globals {
		ng := &Global{Name: g.Name, Op: g.Op, Init: g.Init, Lock: g.Lock}
		remap[g] = ng
		cp.Globals = append(cp.Globals, ng)
	}
	rebind := func(stmts []Stmt) []Stmt {
		out := cloneStmts(stmts)
		var walk func([]Stmt)
		walk = func(ss []Stmt) {
			for _, s := range ss {
				switch st := s.(type) {
				case *UpdStmt:
					st.Global = remap[st.Global]
				case *PrintGlobalStmt:
					st.Global = remap[st.Global]
				case *ForStmt:
					walk(st.Body)
				case *IfStmt:
					walk(st.Then)
					walk(st.Else)
				case *LockStmt:
					walk(st.Body)
				}
			}
		}
		walk(out)
		return out
	}
	for _, w := range p.Workers {
		cp.Workers = append(cp.Workers, &Worker{Name: w.Name, Body: rebind(w.Body)})
	}
	cp.MainMid = rebind(p.MainMid)
	cp.Epi = rebind(p.Epi)
	return cp
}

// generator carries the per-program generation state.
type generator struct {
	rng    *frand.RNG
	p      *Prog
	params sizeParams
	nKey   int // unique print-key counter
	nVar   int // unique local-name counter (per function, reset)
	nLoop  int
}

// Generate builds a random program from seed. The same (seed, size) pair
// always yields the same program.
func Generate(seed uint64, size Size) *Prog {
	g := &generator{
		rng:    frand.New(seed*0x9e3779b97f4a7c15 + uint64(size) + 1),
		params: size.params(),
	}
	g.p = &Prog{Seed: seed, Size: size}
	g.build()
	return g.p
}

func (g *generator) build() {
	p, pr := g.p, g.params

	// Shared state: locks first, then globals bound to them.
	p.NLocks = g.rng.Range(1, 2)
	nGlobals := g.rng.Range(1, pr.maxGlobals)
	ops := []string{"+", "+", "^", "|"} // addition dominates, like real code
	for i := 0; i < nGlobals; i++ {
		p.Globals = append(p.Globals, &Global{
			Name: fmt.Sprintf("g%d", i),
			Op:   ops[g.rng.Intn(len(ops))],
			Init: int64(g.rng.Range(-50, 50)),
			Lock: i % p.NLocks,
		})
	}
	p.Gate = g.rng.Chance(1, 2)
	p.Slots = g.rng.Chance(7, 10)

	// Workers and spawn sites.
	nWorkers := g.rng.Range(1, pr.maxWorkers)
	nSpawns := g.rng.Range(1, pr.maxSpawns)
	if nSpawns < nWorkers {
		nWorkers = nSpawns
	}
	for w := 0; w < nWorkers; w++ {
		p.Workers = append(p.Workers, &Worker{Name: fmt.Sprintf("worker%d", w)})
	}
	for s := 0; s < nSpawns; s++ {
		// Every worker gets at least one spawn; extras are random.
		wi := s % nWorkers
		if s >= nWorkers {
			wi = g.rng.Intn(nWorkers)
		}
		p.Spawns = append(p.Spawns, wi)
	}
	for _, w := range p.Workers {
		w.Body = g.workerBody()
	}

	// Main's own mid-run statements (between spawns and joins).
	g.nVar, g.nLoop = 0, 0
	scope := []string{}
	for i, n := 0, g.rng.Range(0, pr.maxMainMid); i < n; i++ {
		if s := g.stmt(&scope, false, 0); s != nil {
			p.MainMid = append(p.MainMid, s)
		}
	}
	if p.Gate && g.rng.Chance(1, 2) {
		p.MainMid = append(p.MainMid, &AwaitStmt{})
	}

	// Epilogue: observe every piece of shared state, then the end marker.
	for _, gl := range p.Globals {
		p.Epi = append(p.Epi, &PrintGlobalStmt{Global: gl})
	}
	if p.Slots {
		p.Epi = append(p.Epi, &SlotDumpStmt{})
	}
	p.Epi = append(p.Epi, &MarkerStmt{Text: "end"})
}

// workerBody generates one worker function body.
func (g *generator) workerBody() []Stmt {
	g.nVar, g.nLoop = 0, 0
	var body []Stmt
	if g.p.Gate {
		body = append(body, &BumpStmt{})
	}
	scope := []string{"self"}
	n := g.rng.Range(3, g.params.maxStmts)
	for i := 0; i < n; i++ {
		if s := g.stmt(&scope, true, 0); s != nil {
			body = append(body, s)
		}
	}
	if g.p.Slots && g.rng.Chance(4, 5) {
		body = append(body, &SlotWriteStmt{E: g.expr(scope, 2)})
	}
	if g.p.Gate && g.rng.Chance(1, 3) {
		// A worker-side barrier: legal anywhere after the bump (every worker
		// bumps unconditionally first, so the await threshold is always
		// reached), and it makes wait/notifyall fire under real contention.
		pos := 1 + g.rng.Intn(len(body))
		body = append(body[:pos:pos], append([]Stmt{&AwaitStmt{}}, body[pos:]...)...)
	}
	return body
}

// stmt generates one statement. scope accumulates declared locals; inWorker
// enables worker-only constructs; depth bounds nesting.
func (g *generator) stmt(scope *[]string, inWorker bool, depth int) Stmt {
	for {
		switch g.rng.Intn(16) {
		case 0, 1:
			name := fmt.Sprintf("v%d", g.nVar)
			g.nVar++
			s := &DeclStmt{Name: name, E: g.expr(*scope, 2)}
			*scope = append(*scope, name)
			return s
		case 2, 3:
			if tgt := g.mutableVar(*scope); tgt != "" {
				return &AssignStmt{Name: tgt, E: g.expr(*scope, 2)}
			}
		case 4, 5:
			if depth < 2 {
				v := fmt.Sprintf("i%d", g.nLoop)
				g.nLoop++
				inner := append(append([]string(nil), *scope...), v)
				return &ForStmt{Var: v, N: g.rng.Range(2, g.params.maxLoop),
					Body: g.block(inner, inWorker, depth+1, 3)}
			}
		case 6:
			if depth < 2 {
				s := &IfStmt{
					Cond: g.condExpr(*scope),
					Then: g.block(append([]string(nil), *scope...), inWorker, depth+1, 2),
				}
				if g.rng.Chance(2, 5) {
					s.Else = g.block(append([]string(nil), *scope...), inWorker, depth+1, 2)
				}
				return s
			}
		case 7, 8, 9:
			return g.lockStmt(*scope)
		case 10, 11, 12:
			return g.printStmt(*scope)
		case 13, 14:
			return g.nativeStmt()
		case 15:
			if inWorker && g.p.Slots {
				return &SlotWriteStmt{E: g.expr(*scope, 2)}
			}
		}
	}
}

// block generates up to max statements with a block-local scope copy.
func (g *generator) block(scope []string, inWorker bool, depth, max int) []Stmt {
	n := g.rng.Range(1, max)
	var out []Stmt
	for i := 0; i < n; i++ {
		if s := g.stmt(&scope, inWorker, depth); s != nil {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		out = append(out, g.printStmt(scope))
	}
	return out
}

// lockStmt generates a critical section on one lock, updating only globals
// guarded by that lock (the race-freedom invariant).
func (g *generator) lockStmt(scope []string) Stmt {
	lk := g.rng.Intn(g.p.NLocks)
	var guarded []*Global
	for _, gl := range g.p.Globals {
		if gl.Lock == lk {
			guarded = append(guarded, gl)
		}
	}
	if len(guarded) == 0 {
		// A lock with no globals (possible after shrinking remaps) degrades
		// to a print-holding critical section.
		return &LockStmt{Lock: lk, Body: []Stmt{g.printStmt(scope)}}
	}
	var body []Stmt
	for i, n := 0, g.rng.Range(1, 3); i < n; i++ {
		body = append(body, &UpdStmt{Global: guarded[g.rng.Intn(len(guarded))], E: g.expr(scope, 2)})
	}
	if g.rng.Chance(1, 4) {
		body = append(body, g.printStmt(scope))
	}
	return &LockStmt{Lock: lk, Body: body}
}

func (g *generator) printStmt(scope []string) Stmt {
	g.nKey++
	return &PrintStmt{Key: fmt.Sprintf("k%d", g.nKey), E: g.expr(scope, 3)}
}

func (g *generator) nativeStmt() Stmt {
	switch g.rng.Intn(4) {
	case 0:
		return &NativeStmt{Kind: NativeRand}
	case 1:
		return &NativeStmt{Kind: NativeClock}
	case 2:
		return &NativeStmt{Kind: NativeYield}
	default:
		return &NativeStmt{Kind: NativeLockTouch, Lock: g.rng.Intn(g.p.NLocks)}
	}
}

// mutableVar picks an assignable local: declared vars only ("v<n>" by the
// naming convention). self doubles as the thread's slot index, and loop
// counters must stay monotone or the constant bound stops terminating the
// loop — neither may be assignment targets.
func (g *generator) mutableVar(scope []string) string {
	var cands []string
	for _, v := range scope {
		if strings.HasPrefix(v, "v") {
			cands = append(cands, v)
		}
	}
	if len(cands) == 0 {
		return ""
	}
	return cands[g.rng.Intn(len(cands))]
}

// expr generates a deterministic int expression over scope with bounded depth.
func (g *generator) expr(scope []string, depth int) Expr {
	if depth == 0 || g.rng.Chance(1, 3) {
		if len(scope) > 0 && g.rng.Chance(1, 2) {
			return &VarExpr{Name: scope[g.rng.Intn(len(scope))]}
		}
		return &Lit{V: int64(g.rng.Range(-100, 100))}
	}
	switch g.rng.Intn(12) {
	case 0:
		return &BinExpr{Op: "+", X: g.expr(scope, depth-1), Y: g.expr(scope, depth-1)}
	case 1:
		return &BinExpr{Op: "-", X: g.expr(scope, depth-1), Y: g.expr(scope, depth-1)}
	case 2:
		return &BinExpr{Op: "*", X: g.expr(scope, depth-1), Y: g.expr(scope, depth-1)}
	case 3:
		// Division and remainder keep a non-zero literal divisor.
		op := "/"
		if g.rng.Bool() {
			op = "%"
		}
		return &BinExpr{Op: op, X: g.expr(scope, depth-1), Y: &Lit{V: int64(g.rng.Range(1, 9))}}
	case 4:
		op := "<<"
		if g.rng.Bool() {
			op = ">>"
		}
		return &BinExpr{Op: op, X: g.expr(scope, depth-1), Y: &Lit{V: int64(g.rng.Range(0, 8))}}
	case 5:
		ops := []string{"&", "|", "^"}
		return &BinExpr{Op: ops[g.rng.Intn(3)], X: g.expr(scope, depth-1), Y: g.expr(scope, depth-1)}
	case 6:
		return g.condExpr(scope)
	case 7:
		ops := []string{"&&", "||"}
		return &BinExpr{Op: ops[g.rng.Intn(2)], X: g.condExpr(scope), Y: g.condExpr(scope)}
	case 8:
		return &UnExpr{Op: "-", X: g.expr(scope, depth-1)}
	case 9:
		return &UnExpr{Op: "!", X: g.expr(scope, depth-1)}
	default:
		return &MixExpr{A: g.expr(scope, depth-1), B: g.expr(scope, depth-1)}
	}
}

// condExpr generates a comparison (used for if conditions and logical
// operands).
func (g *generator) condExpr(scope []string) Expr {
	ops := []string{"==", "!=", "<", "<=", ">", ">="}
	return &BinExpr{Op: ops[g.rng.Intn(len(ops))], X: g.expr(scope, 1), Y: g.expr(scope, 1)}
}
