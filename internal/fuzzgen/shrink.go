package fuzzgen

// Greedy program shrinking: when a seed fails, try successively smaller
// variants of its program — drop whole threads, then whole features (gate,
// slots, globals), then individual statements, then sub-expressions — and
// keep any variant that still reproduces the failure at the same stage. The
// check parameters (schedule seeds, replication mode, fault plan) derive from
// the seed alone, so every candidate replays the identical scenario.

// DefaultShrinkBudget bounds how many differential re-checks one shrink run
// may spend.
const DefaultShrinkBudget = 300

// Shrink minimizes p while orig still reproduces. It returns the smallest
// reproducing program found and its (re-observed) failure; with an
// unreproducible failure it returns the inputs unchanged.
func (c *Config) Shrink(p *Prog, orig *Failure, budget int) (*Prog, *Failure) {
	if orig == nil {
		return p, nil
	}
	if budget <= 0 {
		budget = DefaultShrinkBudget
	}
	stages := AllStages()
	for _, s := range AllStages() {
		if s == orig.Stage {
			stages = []string{orig.Stage}
		}
	}
	sh := &shrinker{c: c, orig: orig, stages: stages, budget: budget, best: p, bestFail: orig}
	for {
		improved := false
		if sh.dropSpawns() {
			improved = true
		}
		if sh.dropGate() {
			improved = true
		}
		if sh.dropSlots() {
			improved = true
		}
		if sh.dropGlobals() {
			improved = true
		}
		if sh.dropStmts() {
			improved = true
		}
		if sh.simplifyExprs() {
			improved = true
		}
		if !improved || sh.checks >= sh.budget {
			return sh.best, sh.bestFail
		}
	}
}

type shrinker struct {
	c        *Config
	orig     *Failure
	stages   []string
	checks   int
	budget   int
	best     *Prog
	bestFail *Failure
}

// try re-checks a candidate; a failure at the original stage with the same
// error-ness (ran-and-diverged vs failed-to-run) counts as reproducing and
// becomes the new best.
func (s *shrinker) try(cand *Prog) bool {
	if s.checks >= s.budget {
		return false
	}
	s.checks++
	f := s.c.CheckProg(cand, s.stages)
	if f == nil || f.Stage != s.orig.Stage || (f.Err != nil) != (s.orig.Err != nil) {
		return false
	}
	s.best, s.bestFail = cand, f
	return true
}

func (s *shrinker) dropSpawns() bool {
	improved := false
	for i := len(s.best.Spawns) - 1; i >= 0; i-- {
		if i >= len(s.best.Spawns) {
			continue
		}
		cand := s.best.Clone()
		cand.Spawns = append(cand.Spawns[:i], cand.Spawns[i+1:]...)
		if s.try(cand) {
			improved = true
		}
	}
	return improved
}

func (s *shrinker) dropGate() bool {
	if !s.best.Gate {
		return false
	}
	cand := s.best.Clone()
	cand.Gate = false
	removeStmts(cand, func(st Stmt) bool {
		switch st.(type) {
		case *BumpStmt, *AwaitStmt:
			return true
		}
		return false
	})
	return s.try(cand)
}

func (s *shrinker) dropSlots() bool {
	if !s.best.Slots {
		return false
	}
	cand := s.best.Clone()
	cand.Slots = false
	removeStmts(cand, func(st Stmt) bool {
		switch st.(type) {
		case *SlotWriteStmt, *SlotDumpStmt:
			return true
		}
		return false
	})
	return s.try(cand)
}

func (s *shrinker) dropGlobals() bool {
	improved := false
	for i := len(s.best.Globals) - 1; i >= 0; i-- {
		if i >= len(s.best.Globals) {
			continue
		}
		cand := s.best.Clone()
		victim := cand.Globals[i]
		cand.Globals = append(cand.Globals[:i], cand.Globals[i+1:]...)
		removeStmts(cand, func(st Stmt) bool {
			switch x := st.(type) {
			case *UpdStmt:
				return x.Global == victim
			case *PrintGlobalStmt:
				return x.Global == victim
			}
			return false
		})
		if s.try(cand) {
			improved = true
		}
	}
	return improved
}

// dropStmts tries removing every individual statement, last first. Bumps are
// exempt: removing one worker's barrier arrival while awaits remain would
// manufacture a deadlock unrelated to the original failure (the gate is
// instead dropped wholesale by dropGate).
func (s *shrinker) dropStmts() bool {
	improved := false
	for i := countDroppable(s.best) - 1; i >= 0; i-- {
		if i >= countDroppable(s.best) {
			continue
		}
		cand := s.best.Clone()
		if !dropNthDroppable(cand, i) {
			continue
		}
		if s.try(cand) {
			improved = true
		}
	}
	return improved
}

// simplifyExprs tries, for every expression node, replacing it with 0 and
// (failing that) hoisting its first operand.
func (s *shrinker) simplifyExprs() bool {
	improved := false
	for i := countExprs(s.best) - 1; i >= 0; i-- {
		if i >= countExprs(s.best) {
			continue
		}
		for _, mode := range []int{exprToZero, exprHoist} {
			cand := s.best.Clone()
			if !editNthExpr(cand, i, mode) {
				continue
			}
			if s.try(cand) {
				improved = true
				break
			}
		}
	}
	return improved
}

// forEachBlock visits every statement block in a deterministic order, with
// write access (the visitor may replace the slice).
func forEachBlock(p *Prog, fn func(blk *[]Stmt)) {
	var walk func(blk *[]Stmt)
	walk = func(blk *[]Stmt) {
		fn(blk)
		for _, st := range *blk {
			switch x := st.(type) {
			case *ForStmt:
				walk(&x.Body)
			case *IfStmt:
				walk(&x.Then)
				if x.Else != nil {
					walk(&x.Else)
				}
			case *LockStmt:
				walk(&x.Body)
			}
		}
	}
	for _, w := range p.Workers {
		walk(&w.Body)
	}
	walk(&p.MainMid)
	walk(&p.Epi)
}

func removeStmts(p *Prog, victim func(Stmt) bool) {
	forEachBlock(p, func(blk *[]Stmt) {
		kept := (*blk)[:0]
		for _, st := range *blk {
			if !victim(st) {
				kept = append(kept, st)
			}
		}
		*blk = kept
	})
}

func droppable(st Stmt) bool {
	_, isBump := st.(*BumpStmt)
	return !isBump
}

func countDroppable(p *Prog) int {
	n := 0
	forEachBlock(p, func(blk *[]Stmt) {
		for _, st := range *blk {
			if droppable(st) {
				n++
			}
		}
	})
	return n
}

func dropNthDroppable(p *Prog, n int) bool {
	removed := false
	idx := 0
	forEachBlock(p, func(blk *[]Stmt) {
		if removed {
			return
		}
		for i, st := range *blk {
			if !droppable(st) {
				continue
			}
			if idx == n {
				*blk = append(append([]Stmt(nil), (*blk)[:i]...), (*blk)[i+1:]...)
				removed = true
				return
			}
			idx++
		}
	})
	return removed
}

// Expression edit modes.
const (
	exprToZero = iota // replace the node with the literal 0
	exprHoist         // replace the node with its first operand
)

// stmtExprs gives write access to a statement's root expressions.
func stmtExprs(st Stmt, fn func(get Expr, set func(Expr))) {
	switch x := st.(type) {
	case *DeclStmt:
		fn(x.E, func(e Expr) { x.E = e })
	case *AssignStmt:
		fn(x.E, func(e Expr) { x.E = e })
	case *IfStmt:
		fn(x.Cond, func(e Expr) { x.Cond = e })
	case *UpdStmt:
		fn(x.E, func(e Expr) { x.E = e })
	case *PrintStmt:
		fn(x.E, func(e Expr) { x.E = e })
	case *SlotWriteStmt:
		fn(x.E, func(e Expr) { x.E = e })
	}
}

func countExprs(p *Prog) int {
	n := 0
	var walkE func(e Expr)
	walkE = func(e Expr) {
		n++
		switch x := e.(type) {
		case *BinExpr:
			walkE(x.X)
			walkE(x.Y)
		case *UnExpr:
			walkE(x.X)
		case *MixExpr:
			walkE(x.A)
			walkE(x.B)
		}
	}
	forEachBlock(p, func(blk *[]Stmt) {
		for _, st := range *blk {
			stmtExprs(st, func(e Expr, _ func(Expr)) { walkE(e) })
		}
	})
	return n
}

// editNthExpr applies mode to the n-th expression node (pre-order across the
// whole program); it reports whether the edit actually changed anything.
func editNthExpr(p *Prog, n, mode int) bool {
	idx := 0
	changed := false
	var edit func(e Expr) Expr
	edit = func(e Expr) Expr {
		cur := idx
		idx++
		if cur == n {
			switch mode {
			case exprToZero:
				if l, ok := e.(*Lit); ok && l.V == 0 {
					return e // already minimal
				}
				changed = true
				return &Lit{V: 0}
			case exprHoist:
				switch x := e.(type) {
				case *BinExpr:
					changed = true
					return x.X
				case *UnExpr:
					changed = true
					return x.X
				case *MixExpr:
					changed = true
					return x.A
				}
			}
			return e
		}
		switch x := e.(type) {
		case *BinExpr:
			x.X = edit(x.X)
			x.Y = edit(x.Y)
		case *UnExpr:
			x.X = edit(x.X)
		case *MixExpr:
			x.A = edit(x.A)
			x.B = edit(x.B)
		}
		return e
	}
	forEachBlock(p, func(blk *[]Stmt) {
		for _, st := range *blk {
			stmtExprs(st, func(e Expr, set func(Expr)) { set(edit(e)) })
		}
	})
	return changed
}
