package bytecode

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ErrAsm is wrapped by all assembler failures.
var ErrAsm = errors.New("assembly failed")

// Assemble parses the FTVM text assembly format and returns a verified
// Program. The format (one directive or instruction per line, ';' comments):
//
//	program <name>
//	class <Name> <field>...
//	finalizer <Class> <method>
//	static <Class.field>
//	native <name> <signature> <nargs> (void|value)
//	entry <method>
//	method <name> <nargs> (void|value)
//	  <label>:
//	  <mnemonic> [operand]
//	end
//
// Operands: integers/floats/quoted strings for constant pushes; label names
// for jumps; method names for call/spawn (spawn takes "<method> <nargs>");
// Class names for new; Class.field for getf/putf/gets/puts; int|float|ref
// for newarr; slot numbers for load/store.
func Assemble(r io.Reader) (*Program, error) {
	p := &parser{sc: bufio.NewScanner(r)}
	p.sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	prog, err := p.run()
	if err != nil {
		return nil, fmt.Errorf("%w: line %d: %v", ErrAsm, p.line, err)
	}
	return prog, nil
}

// AssembleString assembles src.
func AssembleString(src string) (*Program, error) {
	return Assemble(strings.NewReader(src))
}

type pendingCall struct {
	method string // method name for call/spawn fixups
	pc     int
	mIdx   int // index of method being assembled
}

type parser struct {
	sc   *bufio.Scanner
	line int

	prog      *Program
	cur       *Method
	labels    map[string]int32
	patches   []patch
	callFixes []pendingCall
	finFixes  [][2]string // class, method
	entryName string
}

func (p *parser) next() (fields []string, ok bool) {
	for p.sc.Scan() {
		p.line++
		text := p.sc.Text()
		if i := strings.IndexByte(text, ';'); i >= 0 {
			text = text[:i]
		}
		f := tokenize(text)
		if len(f) == 0 {
			continue
		}
		return f, true
	}
	return nil, false
}

// tokenize splits on whitespace but keeps quoted strings (with \n \t \" \\
// escapes) as single tokens including the quotes.
func tokenize(s string) []string {
	var out []string
	i := 0
	for i < len(s) {
		for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
			i++
		}
		if i >= len(s) {
			break
		}
		if s[i] == '"' {
			j := i + 1
			for j < len(s) && s[j] != '"' {
				if s[j] == '\\' && j+1 < len(s) {
					j++
				}
				j++
			}
			if j < len(s) {
				j++ // include closing quote
			}
			out = append(out, s[i:j])
			i = j
			continue
		}
		j := i
		for j < len(s) && s[j] != ' ' && s[j] != '\t' {
			j++
		}
		out = append(out, s[i:j])
		i = j
	}
	return out
}

func (p *parser) run() (*Program, error) {
	p.prog = &Program{Name: "anonymous", Entry: -1}
	for {
		f, ok := p.next()
		if !ok {
			break
		}
		switch f[0] {
		case "program":
			if len(f) != 2 {
				return nil, errors.New("program: want 1 operand")
			}
			p.prog.Name = f[1]
		case "class":
			if len(f) < 2 {
				return nil, errors.New("class: want a name")
			}
			c := Class{Name: f[1], Finalizer: -1}
			for _, fl := range f[2:] {
				c.Fields = append(c.Fields, Field{Name: fl})
			}
			p.prog.Classes = append(p.prog.Classes, c)
		case "finalizer":
			if len(f) != 3 {
				return nil, errors.New("finalizer: want class and method")
			}
			p.finFixes = append(p.finFixes, [2]string{f[1], f[2]})
		case "static":
			if len(f) != 2 {
				return nil, errors.New("static: want a name")
			}
			p.prog.Statics = append(p.prog.Statics, f[1])
		case "native":
			if len(f) != 5 {
				return nil, errors.New("native: want name, signature, nargs, void|value")
			}
			nargs, err := strconv.Atoi(f[3])
			if err != nil {
				return nil, fmt.Errorf("native %s: bad nargs: %v", f[1], err)
			}
			ret, err := parseRet(f[4])
			if err != nil {
				return nil, err
			}
			p.prog.Methods = append(p.prog.Methods, &Method{
				Name: f[1], NativeSig: f[2], NArgs: nargs, NLocals: nargs,
				Returns: ret, Native: true,
			})
		case "entry":
			if len(f) != 2 {
				return nil, errors.New("entry: want a method name")
			}
			p.entryName = f[1]
		case "method":
			if err := p.parseMethod(f); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("unexpected directive %q", f[0])
		}
	}
	if err := p.sc.Err(); err != nil {
		return nil, err
	}
	if err := p.resolve(); err != nil {
		return nil, err
	}
	if err := Verify(p.prog); err != nil {
		return nil, err
	}
	return p.prog, nil
}

func parseRet(s string) (bool, error) {
	switch s {
	case "void":
		return false, nil
	case "value":
		return true, nil
	default:
		return false, fmt.Errorf("want void|value, got %q", s)
	}
}

func (p *parser) parseMethod(f []string) error {
	if len(f) != 4 {
		return errors.New("method: want name, nargs, void|value")
	}
	nargs, err := strconv.Atoi(f[2])
	if err != nil {
		return fmt.Errorf("method %s: bad nargs: %v", f[1], err)
	}
	ret, err := parseRet(f[3])
	if err != nil {
		return err
	}
	m := &Method{Name: f[1], NArgs: nargs, NLocals: nargs, Returns: ret}
	p.cur = m
	p.labels = make(map[string]int32)
	p.patches = nil
	maxSlot := int32(nargs) - 1
	mIdx := len(p.prog.Methods)
	p.prog.Methods = append(p.prog.Methods, m)

	for {
		f, ok := p.next()
		if !ok {
			return fmt.Errorf("method %s: missing end", m.Name)
		}
		if f[0] == "end" {
			break
		}
		if strings.HasSuffix(f[0], ":") && len(f) == 1 {
			name := strings.TrimSuffix(f[0], ":")
			if _, dup := p.labels[name]; dup {
				return fmt.Errorf("method %s: duplicate label %q", m.Name, name)
			}
			p.labels[name] = int32(len(m.Code))
			continue
		}
		op, ok := OpcodeByName(f[0])
		if !ok {
			return fmt.Errorf("method %s: unknown mnemonic %q", m.Name, f[0])
		}
		in := Instr{Op: op}
		info := opTable[op]
		if info.operand != "" && len(f) < 2 {
			return fmt.Errorf("%s: missing %s operand", f[0], info.operand)
		}
		switch info.operand {
		case "":
			if len(f) != 1 {
				return fmt.Errorf("%s takes no operand", f[0])
			}
		case "imm":
			if len(f) != 2 {
				return fmt.Errorf("%s: want 1 operand", f[0])
			}
			v, err := strconv.ParseInt(f[1], 0, 64)
			if err != nil {
				return fmt.Errorf("%s: bad immediate %q", f[0], f[1])
			}
			if op == OpIConst && (v < -1<<30 || v >= 1<<30) {
				in.Op = OpLConst
				in.A = p.prog.InternInt(v)
			} else {
				in.A = int32(v)
				if op == OpLoad || op == OpStore {
					if in.A > maxSlot {
						maxSlot = in.A
					}
				}
			}
		case "int":
			v, err := strconv.ParseInt(f[1], 0, 64)
			if err != nil {
				return fmt.Errorf("%s: bad int %q", f[0], f[1])
			}
			in.A = p.prog.InternInt(v)
		case "float":
			v, err := strconv.ParseFloat(f[1], 64)
			if err != nil {
				return fmt.Errorf("%s: bad float %q", f[0], f[1])
			}
			in.A = p.prog.InternFloat(v)
		case "str":
			if len(f) != 2 || len(f[1]) < 2 || f[1][0] != '"' {
				return fmt.Errorf("%s: want a quoted string", f[0])
			}
			s, err := strconv.Unquote(f[1])
			if err != nil {
				return fmt.Errorf("%s: bad string %s: %v", f[0], f[1], err)
			}
			in.A = p.prog.InternString(s)
		case "label":
			if len(f) != 2 {
				return fmt.Errorf("%s: want a label", f[0])
			}
			p.patches = append(p.patches, patch{pc: len(m.Code), label: f[1]})
			in.A = -1
		case "method":
			if op == OpSpawn {
				if len(f) != 3 {
					return errors.New("spawn: want method and nargs")
				}
				n, err := strconv.Atoi(f[2])
				if err != nil {
					return fmt.Errorf("spawn: bad nargs %q", f[2])
				}
				in.B = int32(n)
			} else if len(f) != 2 {
				return fmt.Errorf("%s: want a method name", f[0])
			}
			p.callFixes = append(p.callFixes, pendingCall{method: f[1], pc: len(m.Code), mIdx: mIdx})
		case "class":
			if len(f) != 2 {
				return fmt.Errorf("%s: want a class name", f[0])
			}
			idx := int32(-1)
			for i := range p.prog.Classes {
				if p.prog.Classes[i].Name == f[1] {
					idx = int32(i)
					break
				}
			}
			if idx < 0 {
				return fmt.Errorf("%s: unknown class %q", f[0], f[1])
			}
			in.A = idx
		case "field":
			cls, fld, ok := strings.Cut(f[1], ".")
			if !ok {
				return fmt.Errorf("%s: want Class.field, got %q", f[0], f[1])
			}
			found := false
			for i := range p.prog.Classes {
				if p.prog.Classes[i].Name == cls {
					fi := p.prog.Classes[i].FieldIndex(fld)
					if fi < 0 {
						return fmt.Errorf("%s: class %s has no field %s", f[0], cls, fld)
					}
					in.A = int32(fi)
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("%s: unknown class %q", f[0], cls)
			}
		case "static":
			idx := int32(-1)
			for i, s := range p.prog.Statics {
				if s == f[1] {
					idx = int32(i)
					break
				}
			}
			if idx < 0 {
				return fmt.Errorf("%s: unknown static %q", f[0], f[1])
			}
			in.A = idx
		case "elemkind":
			switch f[1] {
			case "int":
				in.A = ElemInt
			case "float":
				in.A = ElemFloat
			case "ref":
				in.A = ElemRef
			default:
				return fmt.Errorf("newarr: want int|float|ref, got %q", f[1])
			}
		}
		m.Code = append(m.Code, in)
	}
	for _, pt := range p.patches {
		target, ok := p.labels[pt.label]
		if !ok {
			return fmt.Errorf("method %s: undefined label %q", m.Name, pt.label)
		}
		m.Code[pt.pc].A = target
	}
	if int(maxSlot)+1 > m.NLocals {
		m.NLocals = int(maxSlot) + 1
	}
	return nil
}

func (p *parser) resolve() error {
	for _, fix := range p.callFixes {
		idx, err := p.prog.MethodIndex(fix.method)
		if err != nil {
			return err
		}
		p.prog.Methods[fix.mIdx].Code[fix.pc].A = idx
	}
	for _, ff := range p.finFixes {
		ci, err := p.prog.ClassIndex(ff[0])
		if err != nil {
			return err
		}
		mi, err := p.prog.MethodIndex(ff[1])
		if err != nil {
			return err
		}
		p.prog.Classes[ci].Finalizer = mi
	}
	if p.entryName != "" {
		idx, err := p.prog.MethodIndex(p.entryName)
		if err != nil {
			return err
		}
		p.prog.Entry = idx
	} else if idx, err := p.prog.MethodIndex("main"); err == nil {
		p.prog.Entry = idx
	}
	return nil
}
