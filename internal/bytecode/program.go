package bytecode

import (
	"errors"
	"fmt"
)

// Field describes one instance field of a class.
type Field struct {
	Name string
}

// Class is a record type: named instance fields plus an optional finalizer
// method (invoked by the VM after the instance becomes garbage).
type Class struct {
	Name      string
	Fields    []Field
	Finalizer int32 // method index, -1 if none
}

// FieldIndex returns the slot of the named field, or -1.
func (c *Class) FieldIndex(name string) int {
	for i, f := range c.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Method is a unit of executable code or a native-method stub.
type Method struct {
	Name    string
	NArgs   int
	NLocals int // includes the NArgs argument slots
	Code    []Instr
	Returns bool // produces a value

	// Native marks the method as a native stub dispatched through the
	// native-method registry by signature (the JNI analog).
	Native    bool
	NativeSig string
}

// Program is the FTVM classfile-set analog: a self-contained unit of classes,
// methods, constant pools and static slots.
type Program struct {
	Name    string
	Classes []Class
	Methods []*Method
	Statics []string // names of static slots ("Class.field")

	IntPool   []int64
	FloatPool []float64
	StrPool   []string

	Entry int32 // method index of main
}

// Errors reported by program lookups.
var (
	ErrNoSuchMethod = errors.New("no such method")
	ErrNoSuchClass  = errors.New("no such class")
	ErrNoSuchStatic = errors.New("no such static")
)

// MethodIndex returns the index of the named method.
func (p *Program) MethodIndex(name string) (int32, error) {
	for i, m := range p.Methods {
		if m.Name == name {
			return int32(i), nil
		}
	}
	return -1, fmt.Errorf("%w: %q", ErrNoSuchMethod, name)
}

// ClassIndex returns the index of the named class.
func (p *Program) ClassIndex(name string) (int32, error) {
	for i := range p.Classes {
		if p.Classes[i].Name == name {
			return int32(i), nil
		}
	}
	return -1, fmt.Errorf("%w: %q", ErrNoSuchClass, name)
}

// StaticIndex returns the slot of the named static.
func (p *Program) StaticIndex(name string) (int32, error) {
	for i, s := range p.Statics {
		if s == name {
			return int32(i), nil
		}
	}
	return -1, fmt.Errorf("%w: %q", ErrNoSuchStatic, name)
}

// InternInt adds v to the int pool (deduplicated) and returns its index.
func (p *Program) InternInt(v int64) int32 {
	for i, x := range p.IntPool {
		if x == v {
			return int32(i)
		}
	}
	p.IntPool = append(p.IntPool, v)
	return int32(len(p.IntPool) - 1)
}

// InternFloat adds v to the float pool (deduplicated) and returns its index.
func (p *Program) InternFloat(v float64) int32 {
	for i, x := range p.FloatPool {
		if x == v {
			return int32(i)
		}
	}
	p.FloatPool = append(p.FloatPool, v)
	return int32(len(p.FloatPool) - 1)
}

// InternString adds s to the string pool (deduplicated) and returns its index.
func (p *Program) InternString(s string) int32 {
	for i, x := range p.StrPool {
		if x == s {
			return int32(i)
		}
	}
	p.StrPool = append(p.StrPool, s)
	return int32(len(p.StrPool) - 1)
}

// InstrCount returns the total number of instructions across all methods.
func (p *Program) InstrCount() int {
	n := 0
	for _, m := range p.Methods {
		n += len(m.Code)
	}
	return n
}
