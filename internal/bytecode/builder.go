package bytecode

import (
	"fmt"
)

// Builder constructs a Program incrementally. It is the backend used by the
// minilang code generator and by tests; the text assembler also lowers onto
// it.
type Builder struct {
	prog *Program
	errs []error
}

// NewBuilder returns a Builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{prog: &Program{Name: name, Entry: -1}}
}

// AddClass declares a class and returns its index.
func (b *Builder) AddClass(name string, fields ...string) int32 {
	c := Class{Name: name, Finalizer: -1}
	for _, f := range fields {
		c.Fields = append(c.Fields, Field{Name: f})
	}
	b.prog.Classes = append(b.prog.Classes, c)
	return int32(len(b.prog.Classes) - 1)
}

// SetFinalizer attaches a finalizer method (by index) to a class.
func (b *Builder) SetFinalizer(class int32, method int32) {
	if int(class) >= len(b.prog.Classes) {
		b.errs = append(b.errs, fmt.Errorf("finalizer: bad class %d", class))
		return
	}
	b.prog.Classes[class].Finalizer = method
}

// AddStatic declares a static slot and returns its index.
func (b *Builder) AddStatic(name string) int32 {
	b.prog.Statics = append(b.prog.Statics, name)
	return int32(len(b.prog.Statics) - 1)
}

// DeclareMethod reserves a method slot (so mutually recursive methods can
// reference each other) and returns its index. Fill it with DefineMethod.
func (b *Builder) DeclareMethod(name string, nargs int, returns bool) int32 {
	b.prog.Methods = append(b.prog.Methods, &Method{
		Name:    name,
		NArgs:   nargs,
		NLocals: nargs,
		Returns: returns,
	})
	return int32(len(b.prog.Methods) - 1)
}

// DeclareNative registers a native-method stub dispatched by signature.
func (b *Builder) DeclareNative(name, sig string, nargs int, returns bool) int32 {
	b.prog.Methods = append(b.prog.Methods, &Method{
		Name:      name,
		NArgs:     nargs,
		NLocals:   nargs,
		Returns:   returns,
		Native:    true,
		NativeSig: sig,
	})
	return int32(len(b.prog.Methods) - 1)
}

// Program finalises and returns the program, or the first accumulated error.
func (b *Builder) Program() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if b.prog.Entry < 0 {
		if idx, err := b.prog.MethodIndex("main"); err == nil {
			b.prog.Entry = idx
		} else {
			return nil, fmt.Errorf("program %q has no entry method: %w", b.prog.Name, err)
		}
	}
	if err := Verify(b.prog); err != nil {
		return nil, fmt.Errorf("verify %q: %w", b.prog.Name, err)
	}
	return b.prog, nil
}

// SetEntry sets the entry method.
func (b *Builder) SetEntry(method int32) { b.prog.Entry = method }

// Raw returns the in-progress program (for interning constants).
func (b *Builder) Raw() *Program { return b.prog }

// Asm assembles code for a previously declared method slot. Labels are
// strings; emit jumps with JmpL/JzL/JnzL and place targets with Label.
type Asm struct {
	b       *Builder
	m       *Method
	code    []Instr
	labels  map[string]int32
	patches []patch
	next    int // next free local slot
}

type patch struct {
	pc    int
	label string
}

// Define begins assembling the body of method idx.
func (b *Builder) Define(idx int32) *Asm {
	m := b.prog.Methods[idx]
	return &Asm{b: b, m: m, labels: make(map[string]int32), next: m.NArgs}
}

// Local allocates a fresh local slot.
func (a *Asm) Local() int32 {
	s := a.next
	a.next++
	return int32(s)
}

// Emit appends a raw instruction.
func (a *Asm) Emit(op Opcode, operands ...int32) *Asm {
	in := Instr{Op: op}
	if len(operands) > 0 {
		in.A = operands[0]
	}
	if len(operands) > 1 {
		in.B = operands[1]
	}
	a.code = append(a.code, in)
	return a
}

// Int pushes an integer constant, via immediate or pool as needed.
func (a *Asm) Int(v int64) *Asm {
	if v >= -1<<30 && v < 1<<30 {
		return a.Emit(OpIConst, int32(v))
	}
	return a.Emit(OpLConst, a.b.prog.InternInt(v))
}

// Float pushes a float constant.
func (a *Asm) Float(v float64) *Asm {
	return a.Emit(OpFConst, a.b.prog.InternFloat(v))
}

// Str pushes a string constant.
func (a *Asm) Str(s string) *Asm {
	return a.Emit(OpSConst, a.b.prog.InternString(s))
}

// Load pushes local slot s.
func (a *Asm) Load(s int32) *Asm { return a.Emit(OpLoad, s) }

// Store pops into local slot s.
func (a *Asm) Store(s int32) *Asm { return a.Emit(OpStore, s) }

// Label places a jump target at the current position.
func (a *Asm) Label(name string) *Asm {
	if _, dup := a.labels[name]; dup {
		a.b.errs = append(a.b.errs, fmt.Errorf("method %s: duplicate label %q", a.m.Name, name))
	}
	a.labels[name] = int32(len(a.code))
	return a
}

// Jmp emits an unconditional jump to a label.
func (a *Asm) Jmp(label string) *Asm { return a.jump(OpJmp, label) }

// Jz emits a jump-if-zero to a label.
func (a *Asm) Jz(label string) *Asm { return a.jump(OpJz, label) }

// Jnz emits a jump-if-nonzero to a label.
func (a *Asm) Jnz(label string) *Asm { return a.jump(OpJnz, label) }

func (a *Asm) jump(op Opcode, label string) *Asm {
	a.patches = append(a.patches, patch{pc: len(a.code), label: label})
	return a.Emit(op, -1)
}

// Call emits a call to a method by index.
func (a *Asm) Call(m int32) *Asm { return a.Emit(OpCall, m) }

// CallNamed emits a call to a method by name (resolved at Done).
func (a *Asm) CallNamed(name string) *Asm {
	idx, err := a.b.prog.MethodIndex(name)
	if err != nil {
		a.b.errs = append(a.b.errs, fmt.Errorf("method %s: %w", a.m.Name, err))
		idx = 0
	}
	return a.Emit(OpCall, idx)
}

// Done resolves labels and installs the code into the method.
func (a *Asm) Done() {
	for _, p := range a.patches {
		target, ok := a.labels[p.label]
		if !ok {
			a.b.errs = append(a.b.errs, fmt.Errorf("method %s: undefined label %q", a.m.Name, p.label))
			continue
		}
		a.code[p.pc].A = target
	}
	a.m.Code = a.code
	if a.next > a.m.NLocals {
		a.m.NLocals = a.next
	}
}
