package bytecode

import (
	"errors"
	"fmt"
)

// ErrVerify is wrapped by all verification failures.
var ErrVerify = errors.New("bytecode verification failed")

// Verify performs a structural check of every method in p: operand ranges,
// jump targets, call arities, pool indices, local-slot bounds, and that
// every non-native method body terminates each path with ret/retv/halt or a
// backward jump. It does not model types (the interpreter traps kind
// mismatches at run time, which the VM reports as fatal environment errors
// per restriction R0).
func Verify(p *Program) error {
	if p.Entry < 0 || int(p.Entry) >= len(p.Methods) {
		return fmt.Errorf("%w: bad entry method %d", ErrVerify, p.Entry)
	}
	if p.Methods[p.Entry].Native {
		return fmt.Errorf("%w: entry method is native", ErrVerify)
	}
	for ci := range p.Classes {
		if fin := p.Classes[ci].Finalizer; fin >= 0 {
			if int(fin) >= len(p.Methods) {
				return fmt.Errorf("%w: class %s: bad finalizer method %d", ErrVerify, p.Classes[ci].Name, fin)
			}
			if p.Methods[fin].NArgs != 1 {
				return fmt.Errorf("%w: class %s: finalizer must take 1 arg", ErrVerify, p.Classes[ci].Name)
			}
			// A value-returning finalizer would push its result onto the
			// operand stack of whatever frame GC interrupted.
			if p.Methods[fin].Returns {
				return fmt.Errorf("%w: class %s: finalizer must not return a value", ErrVerify, p.Classes[ci].Name)
			}
		}
	}
	for mi, m := range p.Methods {
		if err := verifyMethod(p, m); err != nil {
			return fmt.Errorf("%w: method %d (%s): %v", ErrVerify, mi, m.Name, err)
		}
	}
	return nil
}

func verifyMethod(p *Program, m *Method) error {
	if m.Native {
		if m.NativeSig == "" {
			return errors.New("native method without signature")
		}
		if len(m.Code) != 0 {
			return errors.New("native method with code")
		}
		return nil
	}
	if len(m.Code) == 0 {
		return errors.New("empty body")
	}
	if m.NLocals < m.NArgs {
		return fmt.Errorf("NLocals %d < NArgs %d", m.NLocals, m.NArgs)
	}
	// The verifier does not model reference types, so the tightest sound
	// bound for a getf/putf operand is the largest field count over all
	// classes; the interpreter still traps per-class mismatches at run time.
	maxFields := 0
	for ci := range p.Classes {
		if nf := len(p.Classes[ci].Fields); nf > maxFields {
			maxFields = nf
		}
	}
	n := int32(len(m.Code))
	for pc, in := range m.Code {
		info, ok := opTable[in.Op]
		if !ok {
			return fmt.Errorf("pc %d: unknown opcode %d", pc, in.Op)
		}
		switch info.operand {
		case "label":
			if in.A < 0 || in.A >= n {
				return fmt.Errorf("pc %d (%s): jump target %d out of range [0,%d)", pc, info.name, in.A, n)
			}
		case "int":
			if in.A < 0 || int(in.A) >= len(p.IntPool) {
				return fmt.Errorf("pc %d (%s): int pool index %d", pc, info.name, in.A)
			}
		case "float":
			if in.A < 0 || int(in.A) >= len(p.FloatPool) {
				return fmt.Errorf("pc %d (%s): float pool index %d", pc, info.name, in.A)
			}
		case "str":
			if in.A < 0 || int(in.A) >= len(p.StrPool) {
				return fmt.Errorf("pc %d (%s): string pool index %d", pc, info.name, in.A)
			}
		case "method":
			if in.A < 0 || int(in.A) >= len(p.Methods) {
				return fmt.Errorf("pc %d (%s): method index %d", pc, info.name, in.A)
			}
			if in.Op == OpSpawn {
				callee := p.Methods[in.A]
				if in.B != int32(callee.NArgs) {
					return fmt.Errorf("pc %d: spawn arity %d != method %s arity %d", pc, in.B, callee.Name, callee.NArgs)
				}
				if callee.Native {
					return fmt.Errorf("pc %d: cannot spawn native method %s", pc, callee.Name)
				}
			}
		case "class":
			if in.A < 0 || int(in.A) >= len(p.Classes) {
				return fmt.Errorf("pc %d (%s): class index %d", pc, info.name, in.A)
			}
		case "field":
			if in.A < 0 || int(in.A) >= maxFields {
				return fmt.Errorf("pc %d (%s): field index %d out of range (max fields %d)", pc, info.name, in.A, maxFields)
			}
		case "static":
			if in.A < 0 || int(in.A) >= len(p.Statics) {
				return fmt.Errorf("pc %d (%s): static index %d", pc, info.name, in.A)
			}
		case "elemkind":
			if in.A != ElemInt && in.A != ElemFloat && in.A != ElemRef {
				return fmt.Errorf("pc %d: bad array element kind %d", pc, in.A)
			}
		case "imm":
			if in.Op == OpLoad || in.Op == OpStore {
				if in.A < 0 || int(in.A) >= m.NLocals {
					return fmt.Errorf("pc %d (%s): local slot %d of %d", pc, info.name, in.A, m.NLocals)
				}
			}
		}
		// Fallthrough off the end of the body is invalid.
		if pc == len(m.Code)-1 {
			switch in.Op {
			case OpRet, OpRetV, OpHalt, OpJmp:
			default:
				return fmt.Errorf("pc %d: body may fall off the end (last op %s)", pc, info.name)
			}
		}
	}
	return checkStackDepths(p, m)
}

// checkStackDepths runs a fixpoint dataflow over stack depth: every pc must
// be reached with a consistent depth, pops never underflow, and retv paths
// carry exactly one value.
func checkStackDepths(p *Program, m *Method) error {
	const unseen = -1
	depth := make([]int, len(m.Code))
	for i := range depth {
		depth[i] = unseen
	}
	type workItem struct {
		pc, d int
	}
	work := []workItem{{0, 0}}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		pc, d := it.pc, it.d
		for {
			if pc < 0 || pc >= len(m.Code) {
				return fmt.Errorf("flow reaches pc %d outside body", pc)
			}
			if depth[pc] != unseen {
				if depth[pc] != d {
					return fmt.Errorf("pc %d reached with inconsistent stack depth (%d vs %d)", pc, depth[pc], d)
				}
				break
			}
			depth[pc] = d
			in := m.Code[pc]
			pop, push := stackEffect(p, in)
			if d < pop {
				return fmt.Errorf("pc %d (%s): stack underflow (depth %d, pops %d)", pc, in.Op, d, pop)
			}
			d = d - pop + push
			switch in.Op {
			case OpJmp:
				pc = int(in.A)
				continue
			case OpJz, OpJnz:
				work = append(work, workItem{int(in.A), d})
				pc++
				continue
			case OpRet, OpHalt:
				if in.Op == OpRet && m.Returns {
					return fmt.Errorf("pc %d: ret in value-returning method", pc)
				}
			case OpRetV:
				if !m.Returns {
					return fmt.Errorf("pc %d: retv in void method", pc)
				}
			default:
				pc++
				continue
			}
			break
		}
	}
	return nil
}

// stackEffect returns (pops, pushes) for in, resolving variable-arity ops.
func stackEffect(p *Program, in Instr) (int, int) {
	info := opTable[in.Op]
	pop, push := info.pop, info.push
	switch in.Op {
	case OpCall:
		callee := p.Methods[in.A]
		pop = callee.NArgs
		push = 0
		if callee.Returns {
			push = 1
		}
	case OpSpawn:
		pop = int(in.B)
		push = 1
	}
	return pop, push
}
