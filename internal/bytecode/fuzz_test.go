package bytecode

import (
	"bytes"
	"testing"
)

// fuzzSeedSources are small but representative assembly programs: threads,
// monitors, natives, arrays, floats, strings, exception edges — the same
// opcode families the whole-program fuzzer (internal/fuzzgen) exercises.
var fuzzSeedSources = []string{
	`
method main 0 void
  iconst 42
  pop
  ret
end
`,
	`
static Main.sum
static Main.lock
class Lock dummy
native print io.print 1 void
native rand sys.rand 0 value
method worker 1 void
  iconst 0
  store 1
loop:
  load 1
  iconst 10
  icmp
  jz done
  call rand
  store 2
  gets Main.lock
  menter
  gets Main.sum
  iconst 3
  iadd
  puts Main.sum
  gets Main.lock
  mexit
  load 1
  iconst 1
  iadd
  store 1
  jmp loop
done:
  ret
end
method main 0 void
  new Lock
  puts Main.lock
  iconst 0
  puts Main.sum
  iconst 1
  spawn worker 1
  store 0
  load 0
  join
  gets Main.sum
  i2s
  call print
  ret
end
`,
	`
static Main.box
class Box value
native print io.print 1 void
method main 0 void
  new Box
  puts Main.box
  gets Main.box
  menter
  gets Main.box
  notifyall
  gets Main.box
  mexit
  sconst "done"
  call print
  ret
end
`,
}

func fuzzSeedPrograms(f *testing.F) []*Program {
	f.Helper()
	var progs []*Program
	for _, src := range fuzzSeedSources {
		p, err := AssembleString(src)
		if err != nil {
			f.Fatalf("seed program: %v", err)
		}
		progs = append(progs, p)
	}
	return progs
}

// FuzzProgramBinary feeds arbitrary bytes to the binary deserialiser: it must
// either return a verified program or an error — never panic — and anything
// it accepts must round-trip through Encode/Decode unchanged.
func FuzzProgramBinary(f *testing.F) {
	for _, p := range fuzzSeedPrograms(f) {
		img, err := EncodeBytes(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(img)
		// A corrupted variant seeds the error paths.
		bad := append([]byte(nil), img...)
		bad[len(bad)/2] ^= 0xff
		f.Add(bad)
	}
	f.Add([]byte{})
	f.Add([]byte("FTVM"))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeBytes(data)
		if err != nil {
			return
		}
		// Accepted images are verified programs; they must survive a binary
		// round trip bit-for-bit.
		img, err := EncodeBytes(p)
		if err != nil {
			t.Fatalf("re-encode of accepted image: %v", err)
		}
		p2, err := DecodeBytes(img)
		if err != nil {
			t.Fatalf("re-decode of re-encoded image: %v", err)
		}
		img2, err := EncodeBytes(p2)
		if err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		if !bytes.Equal(img, img2) {
			t.Fatal("binary encoding is not a fixpoint for an accepted image")
		}
	})
}

// FuzzAsmRoundTrip feeds arbitrary text to the assembler: it must never
// panic, and any program it accepts must reach a disassemble→assemble
// fixpoint (labels are regenerated, so compare from the first disassembly).
func FuzzAsmRoundTrip(f *testing.F) {
	for _, src := range fuzzSeedSources {
		f.Add(src)
	}
	f.Add("")
	f.Add("method main 0 void\n  ret\nend\n")
	f.Add("garbage\x00\xff")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := AssembleString(src)
		if err != nil {
			return
		}
		text := Disassemble(p)
		p2, err := AssembleString(text)
		if err != nil {
			t.Fatalf("disassembly of accepted program does not re-assemble: %v\n%s", err, text)
		}
		if text2 := Disassemble(p2); text2 != text {
			t.Fatalf("disassembly fixpoint violated:\n--- first\n%s\n--- second\n%s", text, text2)
		}
	})
}
