// Package pairfreq counts opcode-pair frequencies: how often instruction B
// immediately follows instruction A, either statically (adjacent slots in
// compiled method bodies) or dynamically (consecutive executed instructions,
// counted by the interpreter's slow path under vm.Config.PairCounter).
//
// The counts feed the superinstruction fusion table in package bytecode:
// `ftvm-bench -pairfreq` dumps the executed-pair ranking over the six
// benchmark programs, and the fusion-set pin test records the ranks that
// justified each fused pattern, so widening or shrinking fusion is always an
// explicit, data-backed diff (see widefuse.go and TestFusionSetPinned).
package pairfreq

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bytecode"
)

// nOps bounds the opcode space the counter tracks. Base opcodes only: fused
// superinstructions never appear in the streams being counted (static code is
// pre-fusion, and the dynamic hook runs on the unfused slow path).
const nOps = int(bytecode.OpHalt) + 1

// Counter accumulates pair counts. The zero value is ready to use. Not
// goroutine-safe: the VM interpreter is single-goroutine, and merging
// parallel runs is what Merge is for.
type Counter struct {
	counts [nOps][nOps]uint64
	total  uint64
}

// Add records one occurrence of b immediately following a. Opcodes outside
// the base ISA (fused superinstructions) are ignored so callers do not have
// to care which code variant they walked.
func (c *Counter) Add(a, b bytecode.Opcode) {
	if int(a) >= nOps || int(b) >= nOps {
		return
	}
	c.counts[a][b]++
	c.total++
}

// Total returns the number of pairs recorded.
func (c *Counter) Total() uint64 { return c.total }

// Merge adds every count of other into c.
func (c *Counter) Merge(other *Counter) {
	for a := 0; a < nOps; a++ {
		for b := 0; b < nOps; b++ {
			c.counts[a][b] += other.counts[a][b]
		}
	}
	c.total += other.total
}

// AddProgram counts every statically adjacent opcode pair in p's method
// bodies (predecode-normalized: lconst counts as iconst, matching what the
// fusion matcher sees). Jump targets are not treated as pair breaks: fusion
// keeps interior slots executable, so a statically adjacent pair is fusable
// whether or not something jumps into its middle.
func (c *Counter) AddProgram(p *bytecode.Program) {
	for _, m := range p.Methods {
		if m.Native {
			continue
		}
		for i := 0; i+1 < len(m.Code); i++ {
			c.Add(normalize(m.Code[i].Op), normalize(m.Code[i+1].Op))
		}
	}
}

func normalize(op bytecode.Opcode) bytecode.Opcode {
	if op == bytecode.OpLConst {
		return bytecode.OpIConst
	}
	return op
}

// Pair is one (A, B) adjacency with its count.
type Pair struct {
	A, B bytecode.Opcode
	N    uint64
}

func (p Pair) String() string { return p.A.String() + ";" + p.B.String() }

// Top returns the k most frequent pairs, ties broken by opcode order so the
// ranking is deterministic. k <= 0 returns all non-zero pairs.
func (c *Counter) Top(k int) []Pair {
	var out []Pair
	for a := 0; a < nOps; a++ {
		for b := 0; b < nOps; b++ {
			if n := c.counts[a][b]; n > 0 {
				out = append(out, Pair{A: bytecode.Opcode(a), B: bytecode.Opcode(b), N: n})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].N != out[j].N {
			return out[i].N > out[j].N
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Rank returns the 1-based rank of (a, b) in the full ranking, or 0 if the
// pair was never observed.
func (c *Counter) Rank(a, b bytecode.Opcode) int {
	for i, p := range c.Top(0) {
		if p.A == a && p.B == b {
			return i + 1
		}
	}
	return 0
}

// Table formats the top-k ranking as an aligned text table (the
// `ftvm-bench -pairfreq` dump).
func (c *Counter) Table(k int) string {
	top := c.Top(k)
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %-18s %12s %7s\n", "rank", "pair", "count", "share")
	for i, p := range top {
		share := 0.0
		if c.total > 0 {
			share = float64(p.N) / float64(c.total) * 100
		}
		fmt.Fprintf(&b, "%-5d %-18s %12d %6.2f%%\n", i+1, p.String(), p.N, share)
	}
	return b.String()
}
