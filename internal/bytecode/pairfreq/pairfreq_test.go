// Fusion-set pin (dynamic tier): the superinstruction families exist because
// specific opcode adjacencies dominate the executed-pair profile of the six
// benchmark programs. This test re-derives that profile deterministically
// (harness.PairFreq, default seeds — the `ftvm-bench -pairfreq` dump) and
// pins both the top of the ranking and the rank that justifies each fused
// family, so the fusion set can only widen or shrink together with the data
// that motivates it. The static shape of the wide tier is pinned separately
// by TestWideOpsPinned in package bytecode.
package pairfreq_test

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/bytecode/pairfreq"
	"repro/internal/harness"
)

// topPairsPinned is the head of the executed-pair ranking over all six
// benchmarks at scale 1 (default harness seeds). Regenerate with
// FTVM_GOLDEN_PRINT=1 go test -run TestFusionSetPinned ./internal/bytecode/pairfreq
var topPairsPinned = []string{
	"load;iconst", // wide lead w.lc (and the lc.* ALU / compare families)
	"gets;load",   // w.gets.l
	"jz;load",     // block entry: not fusable (branch boundary)
	"iconst;ishr", // pair tier ishrC
	"icmp;iconst", // compare epilogue interior
	"iconst;iadd", // pair tier iaddC
	"ishr;ineg",   // compare epilogue interior (lt/ge)
	"load;aload",  // not fused: aload keeps its bounds-fault path
	"iconst;icmp", // pair tier icmpC / compare lead
	"store;load",  // w.st.l
	"store;jmp",   // w.st.jmp
	"load;gets",   // w.l.gets
}

// familyRanks pins, per fused family, a representative adjacency and the
// deepest rank at which it may appear while still justifying the family.
var familyRanks = []struct {
	family  string
	a, b    bytecode.Opcode
	maxRank int
}{
	{"w.lc (load+const lead)", bytecode.OpLoad, bytecode.OpIConst, 1},
	{"w.gets.l", bytecode.OpGetS, bytecode.OpLoad, 4},
	{"w.st.l", bytecode.OpStore, bytecode.OpLoad, 12},
	{"w.st.jmp", bytecode.OpStore, bytecode.OpJmp, 12},
	{"w.l.gets", bytecode.OpLoad, bytecode.OpGetS, 12},
	{"w.ll (load+load lead)", bytecode.OpLoad, bytecode.OpLoad, 32},
	{"pair tier iaddC", bytecode.OpIConst, bytecode.OpIAdd, 8},
	{"pair tier icmpC / compare lead", bytecode.OpIConst, bytecode.OpICmp, 10},
	{"compare epilogue (icmp;dup for ne/eq)", bytecode.OpICmp, bytecode.OpDup, 20},
	{"w.*.st (alu+store tail)", bytecode.OpIAdd, bytecode.OpStore, 20},
}

func TestFusionSetPinned(t *testing.T) {
	if testing.Short() {
		t.Skip("pair-frequency profile is not -short")
	}
	dyn, _, err := harness.PairFreq(harness.Config{})
	if err != nil {
		t.Fatalf("PairFreq: %v", err)
	}
	top := dyn.Top(len(topPairsPinned))
	if os.Getenv("FTVM_GOLDEN_PRINT") != "" {
		for _, p := range top {
			fmt.Printf("\t%q,\n", p.String())
		}
		return
	}
	for i, p := range top {
		if p.String() != topPairsPinned[i] {
			t.Errorf("executed-pair rank %d drifted: got %s, pinned %s", i+1, p.String(), topPairsPinned[i])
		}
	}
	for _, fr := range familyRanks {
		rank := dyn.Rank(fr.a, fr.b)
		if rank == 0 || rank > fr.maxRank {
			t.Errorf("%s: %s;%s ranks %d (0 = never executed), fusion justification pinned at <= %d",
				fr.family, fr.a, fr.b, rank, fr.maxRank)
		}
	}
}

// TestCounterBasics covers the counting surface the profiler and the pin
// above rely on: merge, rank determinism, and fused-opcode filtering.
func TestCounterBasics(t *testing.T) {
	var a, b pairfreq.Counter
	a.Add(bytecode.OpLoad, bytecode.OpIConst)
	a.Add(bytecode.OpLoad, bytecode.OpIConst)
	a.Add(bytecode.OpIConst, bytecode.OpIAdd)
	b.Add(bytecode.OpIConst, bytecode.OpIAdd)
	b.Add(bytecode.OpIAddC, bytecode.OpLoad) // fused opcode: must be ignored
	a.Merge(&b)
	if a.Total() != 4 {
		t.Fatalf("total %d, want 4 (fused-op pair dropped)", a.Total())
	}
	top := a.Top(0)
	if len(top) != 2 || top[0].String() != "iconst;iadd" || top[0].N != 2 ||
		top[1].String() != "load;iconst" || top[1].N != 2 {
		t.Fatalf("ranking %v, want iconst;iadd then load;iconst (count tie broken by opcode order)", top)
	}
	if got := a.Rank(bytecode.OpLoad, bytecode.OpIConst); got != 2 {
		t.Fatalf("Rank = %d, want 2", got)
	}
	if got := a.Rank(bytecode.OpJmp, bytecode.OpJmp); got != 0 {
		t.Fatalf("Rank of unseen pair = %d, want 0", got)
	}
}
