package bytecode

import (
	"fmt"
	"strconv"
	"strings"
)

// Disassemble renders p back into the text assembly format accepted by
// Assemble. Round-tripping (Assemble ∘ Disassemble) yields an equivalent
// program; jump targets are rendered as generated labels.
func Disassemble(p *Program) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program %s\n", p.Name)
	for ci := range p.Classes {
		c := &p.Classes[ci]
		sb.WriteString("class " + c.Name)
		for _, f := range c.Fields {
			sb.WriteString(" " + f.Name)
		}
		sb.WriteByte('\n')
		if c.Finalizer >= 0 {
			fmt.Fprintf(&sb, "finalizer %s %s\n", c.Name, p.Methods[c.Finalizer].Name)
		}
	}
	for _, s := range p.Statics {
		fmt.Fprintf(&sb, "static %s\n", s)
	}
	for _, m := range p.Methods {
		if m.Native {
			fmt.Fprintf(&sb, "native %s %s %d %s\n", m.Name, m.NativeSig, m.NArgs, retWord(m.Returns))
		}
	}
	if int(p.Entry) < len(p.Methods) && p.Methods[p.Entry].Name != "main" {
		fmt.Fprintf(&sb, "entry %s\n", p.Methods[p.Entry].Name)
	}
	for _, m := range p.Methods {
		if m.Native {
			continue
		}
		fmt.Fprintf(&sb, "method %s %d %s\n", m.Name, m.NArgs, retWord(m.Returns))
		labels := collectLabels(m)
		for pc, in := range m.Code {
			if l, ok := labels[int32(pc)]; ok {
				fmt.Fprintf(&sb, "%s:\n", l)
			}
			sb.WriteString("  ")
			sb.WriteString(formatInstr(p, m, in, labels))
			sb.WriteByte('\n')
		}
		sb.WriteString("end\n")
	}
	return sb.String()
}

func retWord(returns bool) string {
	if returns {
		return "value"
	}
	return "void"
}

func collectLabels(m *Method) map[int32]string {
	labels := make(map[int32]string)
	for _, in := range m.Code {
		if opTable[in.Op].operand == "label" {
			if _, ok := labels[in.A]; !ok {
				labels[in.A] = fmt.Sprintf("L%d", in.A)
			}
		}
	}
	return labels
}

func formatInstr(p *Program, m *Method, in Instr, labels map[int32]string) string {
	info := opTable[in.Op]
	switch info.operand {
	case "":
		return info.name
	case "imm":
		return fmt.Sprintf("%s %d", info.name, in.A)
	case "int":
		return fmt.Sprintf("%s %d", info.name, p.IntPool[in.A])
	case "float":
		return fmt.Sprintf("%s %s", info.name, strconv.FormatFloat(p.FloatPool[in.A], 'g', -1, 64))
	case "str":
		return fmt.Sprintf("%s %s", info.name, strconv.Quote(p.StrPool[in.A]))
	case "label":
		return fmt.Sprintf("%s %s", info.name, labels[in.A])
	case "method":
		if in.Op == OpSpawn {
			return fmt.Sprintf("%s %s %d", info.name, p.Methods[in.A].Name, in.B)
		}
		return fmt.Sprintf("%s %s", info.name, p.Methods[in.A].Name)
	case "class":
		return fmt.Sprintf("%s %s", info.name, p.Classes[in.A].Name)
	case "field":
		// Field indices are class-relative; recover a class owning this slot
		// when possible, otherwise emit the raw index comment-style.
		for ci := range p.Classes {
			if int(in.A) < len(p.Classes[ci].Fields) {
				return fmt.Sprintf("%s %s.%s", info.name, p.Classes[ci].Name, p.Classes[ci].Fields[in.A].Name)
			}
		}
		return fmt.Sprintf("%s %d", info.name, in.A)
	case "static":
		return fmt.Sprintf("%s %s", info.name, p.Statics[in.A])
	case "elemkind":
		switch in.A {
		case ElemInt:
			return info.name + " int"
		case ElemFloat:
			return info.name + " float"
		default:
			return info.name + " ref"
		}
	}
	return info.name
}
