package bytecode

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// Binary classfile-analog format: magic, version, then pools, classes,
// statics, methods, entry. All integers little-endian; strings and slices
// are uvarint-length-prefixed.
const (
	binMagic   = 0x4654564d // "FTVM"
	binVersion = 1
)

// ErrBadImage is wrapped by all binary-decoding failures.
var ErrBadImage = errors.New("bad program image")

type binWriter struct {
	w   io.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

func (bw *binWriter) u32(v uint32) {
	if bw.err != nil {
		return
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, bw.err = bw.w.Write(b[:])
}

func (bw *binWriter) uvarint(v uint64) {
	if bw.err != nil {
		return
	}
	n := binary.PutUvarint(bw.buf[:], v)
	_, bw.err = bw.w.Write(bw.buf[:n])
}

func (bw *binWriter) varint(v int64) {
	if bw.err != nil {
		return
	}
	n := binary.PutVarint(bw.buf[:], v)
	_, bw.err = bw.w.Write(bw.buf[:n])
}

func (bw *binWriter) str(s string) {
	bw.uvarint(uint64(len(s)))
	if bw.err != nil {
		return
	}
	_, bw.err = io.WriteString(bw.w, s)
}

func (bw *binWriter) f64(f float64) { bw.uvarint(math.Float64bits(f)) }

func (bw *binWriter) boolean(b bool) {
	if b {
		bw.uvarint(1)
	} else {
		bw.uvarint(0)
	}
}

// Encode serialises p to w in the FTVM binary image format.
func Encode(w io.Writer, p *Program) error {
	bw := &binWriter{w: w}
	bw.u32(binMagic)
	bw.uvarint(binVersion)
	bw.str(p.Name)

	bw.uvarint(uint64(len(p.IntPool)))
	for _, v := range p.IntPool {
		bw.varint(v)
	}
	bw.uvarint(uint64(len(p.FloatPool)))
	for _, v := range p.FloatPool {
		bw.f64(v)
	}
	bw.uvarint(uint64(len(p.StrPool)))
	for _, v := range p.StrPool {
		bw.str(v)
	}

	bw.uvarint(uint64(len(p.Classes)))
	for ci := range p.Classes {
		c := &p.Classes[ci]
		bw.str(c.Name)
		bw.uvarint(uint64(len(c.Fields)))
		for _, f := range c.Fields {
			bw.str(f.Name)
		}
		bw.varint(int64(c.Finalizer))
	}

	bw.uvarint(uint64(len(p.Statics)))
	for _, s := range p.Statics {
		bw.str(s)
	}

	bw.uvarint(uint64(len(p.Methods)))
	for _, m := range p.Methods {
		bw.str(m.Name)
		bw.uvarint(uint64(m.NArgs))
		bw.uvarint(uint64(m.NLocals))
		bw.boolean(m.Returns)
		bw.boolean(m.Native)
		bw.str(m.NativeSig)
		bw.uvarint(uint64(len(m.Code)))
		for _, in := range m.Code {
			bw.uvarint(uint64(in.Op))
			bw.varint(int64(in.A))
			bw.varint(int64(in.B))
		}
	}
	bw.varint(int64(p.Entry))
	return bw.err
}

// EncodeBytes serialises p into a byte slice.
func EncodeBytes(p *Program) ([]byte, error) {
	var buf bytes.Buffer
	if err := Encode(&buf, p); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

type binReader struct {
	r *byteSource
}

// byteSource is a minimal ByteReader over an io.Reader.
type byteSource struct {
	r   io.Reader
	buf [1]byte
}

func (b *byteSource) ReadByte() (byte, error) {
	_, err := io.ReadFull(b.r, b.buf[:])
	return b.buf[0], err
}

func (b *byteSource) Read(p []byte) (int, error) { return io.ReadFull(b.r, p) }

const maxPoolLen = 1 << 24 // sanity bound for decoded lengths

// maxEagerAlloc caps how much capacity a decoder loop pre-allocates from a
// declared count. Counts up to maxPoolLen are legitimate, but trusting them
// for up-front allocation lets a five-byte image demand hundreds of
// megabytes; beyond this cap the slices grow with append as real bytes
// actually arrive.
const maxEagerAlloc = 4096

func (br *binReader) uvarint() (uint64, error) {
	v, err := binary.ReadUvarint(br.r)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadImage, err)
	}
	return v, nil
}

func (br *binReader) length() (int, error) {
	v, err := br.uvarint()
	if err != nil {
		return 0, err
	}
	if v > maxPoolLen {
		return 0, fmt.Errorf("%w: implausible length %d", ErrBadImage, v)
	}
	return int(v), nil
}

func (br *binReader) varint() (int64, error) {
	v, err := binary.ReadVarint(br.r)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadImage, err)
	}
	return v, nil
}

func (br *binReader) str() (string, error) {
	n, err := br.length()
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	for n > 0 {
		chunk := min(n, maxEagerAlloc)
		b := make([]byte, chunk)
		if _, err := br.r.Read(b); err != nil {
			return "", fmt.Errorf("%w: short string: %v", ErrBadImage, err)
		}
		sb.Write(b)
		n -= chunk
	}
	return sb.String(), nil
}

func (br *binReader) boolean() (bool, error) {
	v, err := br.uvarint()
	return v != 0, err
}

// Decode reads a binary program image and verifies it.
func Decode(r io.Reader) (*Program, error) {
	br := &binReader{r: &byteSource{r: r}}
	var magic [4]byte
	if _, err := br.r.Read(magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadImage, err)
	}
	if binary.LittleEndian.Uint32(magic[:]) != binMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadImage)
	}
	ver, err := br.uvarint()
	if err != nil {
		return nil, err
	}
	if ver != binVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadImage, ver)
	}
	p := &Program{}
	if p.Name, err = br.str(); err != nil {
		return nil, err
	}

	n, err := br.length()
	if err != nil {
		return nil, err
	}
	p.IntPool = make([]int64, 0, min(n, maxEagerAlloc))
	for i := 0; i < n; i++ {
		v, err := br.varint()
		if err != nil {
			return nil, err
		}
		p.IntPool = append(p.IntPool, v)
	}
	if n, err = br.length(); err != nil {
		return nil, err
	}
	p.FloatPool = make([]float64, 0, min(n, maxEagerAlloc))
	for i := 0; i < n; i++ {
		bits, err := br.uvarint()
		if err != nil {
			return nil, err
		}
		p.FloatPool = append(p.FloatPool, math.Float64frombits(bits))
	}
	if n, err = br.length(); err != nil {
		return nil, err
	}
	p.StrPool = make([]string, 0, min(n, maxEagerAlloc))
	for i := 0; i < n; i++ {
		s, err := br.str()
		if err != nil {
			return nil, err
		}
		p.StrPool = append(p.StrPool, s)
	}

	if n, err = br.length(); err != nil {
		return nil, err
	}
	p.Classes = make([]Class, 0, min(n, maxEagerAlloc))
	for i := 0; i < n; i++ {
		var c Class
		if c.Name, err = br.str(); err != nil {
			return nil, err
		}
		nf, err := br.length()
		if err != nil {
			return nil, err
		}
		c.Fields = make([]Field, 0, min(nf, maxEagerAlloc))
		for j := 0; j < nf; j++ {
			var fld Field
			if fld.Name, err = br.str(); err != nil {
				return nil, err
			}
			c.Fields = append(c.Fields, fld)
		}
		fin, err := br.varint()
		if err != nil {
			return nil, err
		}
		c.Finalizer = int32(fin)
		p.Classes = append(p.Classes, c)
	}

	if n, err = br.length(); err != nil {
		return nil, err
	}
	p.Statics = make([]string, 0, min(n, maxEagerAlloc))
	for i := 0; i < n; i++ {
		s, err := br.str()
		if err != nil {
			return nil, err
		}
		p.Statics = append(p.Statics, s)
	}

	if n, err = br.length(); err != nil {
		return nil, err
	}
	p.Methods = make([]*Method, 0, min(n, maxEagerAlloc))
	for i := 0; i < n; i++ {
		m := &Method{}
		if m.Name, err = br.str(); err != nil {
			return nil, err
		}
		na, err := br.length()
		if err != nil {
			return nil, err
		}
		m.NArgs = na
		nl, err := br.length()
		if err != nil {
			return nil, err
		}
		m.NLocals = nl
		if m.Returns, err = br.boolean(); err != nil {
			return nil, err
		}
		if m.Native, err = br.boolean(); err != nil {
			return nil, err
		}
		if m.NativeSig, err = br.str(); err != nil {
			return nil, err
		}
		nc, err := br.length()
		if err != nil {
			return nil, err
		}
		m.Code = make([]Instr, 0, min(nc, maxEagerAlloc))
		for j := 0; j < nc; j++ {
			opv, err := br.uvarint()
			if err != nil {
				return nil, err
			}
			a, err := br.varint()
			if err != nil {
				return nil, err
			}
			bb, err := br.varint()
			if err != nil {
				return nil, err
			}
			m.Code = append(m.Code, Instr{Op: Opcode(opv), A: int32(a), B: int32(bb)})
		}
		p.Methods = append(p.Methods, m)
	}
	entry, err := br.varint()
	if err != nil {
		return nil, err
	}
	p.Entry = int32(entry)
	if err := Verify(p); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadImage, err)
	}
	return p, nil
}

// DecodeBytes decodes a binary program image from b.
func DecodeBytes(b []byte) (*Program, error) {
	return Decode(bytes.NewReader(b))
}
