package bytecode

import (
	"strings"
	"testing"
)

const sampleProgram = `
program sample
class Pair a b
static Main.total
native print io.print 1 void
method add 2 value
  load 0
  load 1
  iadd
  retv
end
method main 0 void
  iconst 2
  iconst 3
  call add
  puts Main.total
  gets Main.total
  i2s
  call print
  ret
end
`

func TestAssembleBasics(t *testing.T) {
	p, err := AssembleString(sampleProgram)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if p.Name != "sample" {
		t.Errorf("name = %q", p.Name)
	}
	if len(p.Classes) != 1 || p.Classes[0].Name != "Pair" || len(p.Classes[0].Fields) != 2 {
		t.Errorf("classes = %+v", p.Classes)
	}
	if len(p.Methods) != 3 {
		t.Fatalf("methods = %d, want 3", len(p.Methods))
	}
	if idx, err := p.MethodIndex("main"); err != nil || p.Entry != idx {
		t.Errorf("entry = %d (%v)", p.Entry, err)
	}
	add := p.Methods[1]
	if add.Name != "add" || add.NArgs != 2 || !add.Returns {
		t.Errorf("add = %+v", add)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct{ name, src, wantSub string }{
		{"unknown op", "method main 0 void\n  frobnicate\n  ret\nend", "unknown mnemonic"},
		{"no end", "method main 0 void\n  ret", "missing end"},
		{"bad label", "method main 0 void\n  jmp nowhere\n  ret\nend", "undefined label"},
		{"dup label", "method main 0 void\nx:\nx:\n  ret\nend", "duplicate label"},
		{"no main", "method other 0 void\n  ret\nend", "entry"},
		{"bad class", "method main 0 void\n  new Missing\n  pop\n  ret\nend", "unknown class"},
		{"bad static", "method main 0 void\n  gets No.pe\n  pop\n  ret\nend", "unknown static"},
		{"underflow", "method main 0 void\n  iadd\n  ret\nend", "underflow"},
		{"fallthrough", "method main 0 void\n  iconst 1\n  pop\nend", "fall off"},
		{"retv in void", "method main 0 void\n  iconst 1\n  retv\nend", "retv in void"},
		{"ret in value", "method f 0 value\n  ret\nend\nmethod main 0 void\n  ret\nend", "ret in value"},
		{"inconsistent depth", "method main 0 void\nloop:\n  iconst 1\n  jmp loop\nend", "inconsistent stack depth"},
		{"spawn arity", "method w 1 void\n  ret\nend\nmethod main 0 void\n  spawn w 2\n  pop\n  ret\nend", "arity"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := AssembleString(tc.src)
			if err == nil {
				t.Fatalf("assembled, want error containing %q", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q missing %q", err, tc.wantSub)
			}
		})
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	p1, err := AssembleString(sampleProgram)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	text := Disassemble(p1)
	p2, err := AssembleString(text)
	if err != nil {
		t.Fatalf("reassemble disassembly: %v\n%s", err, text)
	}
	if len(p2.Methods) != len(p1.Methods) || p2.InstrCount() != p1.InstrCount() {
		t.Fatalf("round trip changed shape: %d/%d methods, %d/%d instrs",
			len(p1.Methods), len(p2.Methods), p1.InstrCount(), p2.InstrCount())
	}
	for i := range p1.Methods {
		m1, m2 := p1.Methods[i], p2.Methods[i]
		for pc := range m1.Code {
			if m1.Code[pc] != m2.Code[pc] {
				t.Fatalf("method %s pc %d: %v vs %v", m1.Name, pc, m1.Code[pc], m2.Code[pc])
			}
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	p1, err := AssembleString(sampleProgram)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	img, err := EncodeBytes(p1)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	p2, err := DecodeBytes(img)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if p2.Name != p1.Name || len(p2.Methods) != len(p1.Methods) ||
		len(p2.Classes) != len(p1.Classes) || p2.Entry != p1.Entry {
		t.Fatalf("round trip mismatch: %+v vs %+v", p1, p2)
	}
	for i := range p1.Methods {
		m1, m2 := p1.Methods[i], p2.Methods[i]
		if m1.Name != m2.Name || m1.NArgs != m2.NArgs || len(m1.Code) != len(m2.Code) {
			t.Fatalf("method %d mismatch", i)
		}
		for pc := range m1.Code {
			if m1.Code[pc] != m2.Code[pc] {
				t.Fatalf("method %s pc %d mismatch", m1.Name, pc)
			}
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	img, err := EncodeBytes(mustProg(t))
	if err != nil {
		t.Fatal(err)
	}
	// Truncations at every length must error, never panic.
	for n := 0; n < len(img); n += 7 {
		if _, err := DecodeBytes(img[:n]); err == nil {
			t.Fatalf("decoded truncation at %d", n)
		}
	}
	// Flipped bytes must never panic (errors are fine, and verification
	// catches structural corruption).
	for i := 0; i < len(img); i += 3 {
		mut := make([]byte, len(img))
		copy(mut, img)
		mut[i] ^= 0xff
		_, _ = DecodeBytes(mut)
	}
}

func mustProg(t *testing.T) *Program {
	t.Helper()
	p, err := AssembleString(sampleProgram)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuilderAPI(t *testing.T) {
	b := NewBuilder("built")
	cls := b.AddClass("Node", "next", "val")
	st := b.AddStatic("G.x")
	m := b.DeclareMethod("main", 0, false)
	asm := b.Define(m)
	tmp := asm.Local()
	asm.Int(41).Store(tmp)
	asm.Load(tmp).Int(1).Emit(OpIAdd).Emit(OpPutS, st)
	asm.Emit(OpNew, cls)
	asm.Emit(OpPop)
	asm.Label("end").Emit(OpRet)
	asm.Done()
	p, err := b.Program()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if p.Methods[m].NLocals != 1 {
		t.Errorf("NLocals = %d", p.Methods[m].NLocals)
	}
	if fi := p.Classes[cls].FieldIndex("val"); fi != 1 {
		t.Errorf("field index = %d", fi)
	}
}

func TestVerifyCatchesBadFinalizer(t *testing.T) {
	b := NewBuilder("bad")
	cls := b.AddClass("R")
	fin := b.DeclareMethod("fin", 2, false) // finalizers must take 1 arg
	b.Define(fin).Emit(OpRet).Done()
	m := b.DeclareMethod("main", 0, false)
	b.Define(m).Emit(OpRet).Done()
	b.SetFinalizer(cls, fin)
	if _, err := b.Program(); err == nil {
		t.Fatal("expected finalizer arity error")
	}
}

func TestOpcodeProperties(t *testing.T) {
	branchOps := []Opcode{OpJmp, OpJz, OpJnz, OpCall, OpRet, OpRetV, OpSpawn, OpJoin}
	for _, op := range branchOps {
		if !op.IsBranch() {
			t.Errorf("%v should count toward br_cnt", op)
		}
	}
	nonBranch := []Opcode{OpIAdd, OpLoad, OpMEnter, OpWait, OpNew, OpHalt, OpYield}
	for _, op := range nonBranch {
		if op.IsBranch() {
			t.Errorf("%v should not count toward br_cnt", op)
		}
	}
	if op, ok := OpcodeByName("menter"); !ok || op != OpMEnter {
		t.Errorf("OpcodeByName(menter) = %v, %v", op, ok)
	}
}

func TestVerifyRejectsValueReturningFinalizer(t *testing.T) {
	b := NewBuilder("bad")
	cls := b.AddClass("R")
	fin := b.DeclareMethod("fin", 1, true) // value-returning: would corrupt
	b.Define(fin).Int(0).Emit(OpRetV).Done()
	m := b.DeclareMethod("main", 0, false)
	b.Define(m).Emit(OpRet).Done()
	b.SetFinalizer(cls, fin)
	if _, err := b.Program(); err == nil {
		t.Fatal("value-returning finalizer accepted")
	}
}
