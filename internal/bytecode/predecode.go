package bytecode

import (
	"errors"
	"fmt"
)

// ErrPredecode wraps every load-time resolution failure.
var ErrPredecode = errors.New("predecode")

// RInstr is the resolved (decode-once) form of an instruction: constants are
// folded in from the pools, the branch property is baked into the instruction
// instead of being looked up per execution, and operand indices have been
// validated against the program, so the interpreter can execute it without
// consulting the pools, the opcode table, or bounds-checking operands it does
// not use.
//
// The serialized Program remains the portable representation; RInstr is a
// per-VM artifact produced by Predecode at load time and never crosses the
// wire, so replicas cannot disagree about it: it is a pure function of the
// Program both sides already share.
type RInstr struct {
	// Op is the opcode. OpLConst is rewritten to OpIConst with the pool
	// value folded into I, so the interpreter needs no OpLConst case.
	Op Opcode
	// Branch is Op.IsBranch(), resolved once at load time (§4.2: branches,
	// jumps, calls and returns increment br_cnt when executed).
	Branch bool
	// A and B carry the original operands where still needed (jump target,
	// local slot, pool/string index, method/class/static index, arg count).
	A, B int32
	// I holds a folded integer constant (OpIConst), or auxiliary resolved
	// data: the field count of the class for OpNew.
	I int64
	// F holds the folded float constant for OpFConst.
	F float64
}

// Fused superinstructions. These exist only in resolved code — Predecode
// emits them, they are never serialized, assembled, or verified — and only in
// the Fused variant used by the interpreter's fast path. Each one executes an
// operand-push (iconst with the constant in I, or load with the slot in A)
// and the following integer ALU op in a single dispatch, advancing the pc by
// two and counting two instructions. The slot of the second instruction keeps
// the original op, so jumps that land between the pair still execute
// correctly.
const (
	OpIAddC Opcode = OpHalt + 1 + iota
	OpISubC
	OpIMulC
	OpIDivC
	OpIRemC
	OpIAndC
	OpIOrC
	OpIXorC
	OpIShlC
	OpIShrC
	OpICmpC
	OpIAddL
	OpISubL
	OpIMulL
	OpIDivL
	OpIRemL
	OpIAndL
	OpIOrL
	OpIXorL
	OpIShlL
	OpIShrL
	OpICmpL
)

// fuseDelta maps a fusable integer ALU op to the distance between its
// const-variant fused opcode and OpIAddC; the local-variant sits fuseWidth
// further up.
var fuseDelta = map[Opcode]Opcode{
	OpIAdd: 0, OpISub: 1, OpIMul: 2, OpIDiv: 3, OpIRem: 4,
	OpIAnd: 5, OpIOr: 6, OpIXor: 7, OpIShl: 8, OpIShr: 9, OpICmp: 10,
}

const fuseWidth = 11 // C-variants per ALU op before the L-variants start

// Resolved is the decode-once form of a program: one resolved code slice per
// method, index-aligned with Program.Methods (nil for native stubs).
//
// Methods is the faithful one-op-per-bytecode form, used whenever per-
// bytecode observation is required (progress tracking, exact replay). Fused
// is the same code with adjacent push+ALU pairs collapsed into
// superinstructions; both arrays are index-aligned per pc, so the
// interpreter can switch between them at any dispatch boundary.
type Resolved struct {
	Methods [][]RInstr
	Fused   [][]RInstr
	// Wide is the wide-fusion variant consumed by the threaded engine:
	// multi-instruction superinstruction groups chosen by DP segmentation
	// over the benchmark-derived pair/idiom table (widefuse.go). Index-
	// aligned per pc like Fused; interior slots keep executable content so
	// jumps into the middle of a group stay valid.
	Wide [][]RInstr
}

// fuse builds the superinstruction variant of code. The first instruction of
// a fused pair is replaced; the second keeps its original op so it remains a
// valid jump target.
func fuse(code []RInstr) []RInstr {
	out := make([]RInstr, len(code))
	copy(out, code)
	for pc := 0; pc+1 < len(code); pc++ {
		d, ok := fuseDelta[code[pc+1].Op]
		if !ok {
			continue
		}
		switch code[pc].Op {
		case OpIConst:
			out[pc] = RInstr{Op: OpIAddC + d, I: code[pc].I}
		case OpLoad:
			out[pc] = RInstr{Op: OpIAddC + fuseWidth + d, A: code[pc].A}
		}
	}
	return out
}

func predecodeErr(m *Method, pc int, format string, args ...any) error {
	return fmt.Errorf("%w: %s+%d: %s", ErrPredecode, m.Name, pc, fmt.Sprintf(format, args...))
}

// Predecode resolves every method of p. It validates, once and for all, the
// operands the interpreter would otherwise have to trust on every execution:
// jump targets must land inside the method, pool and static indices must be
// in range, call/spawn targets must name existing methods, and spawn targets
// must be non-native. Opcodes the interpreter does not know are passed
// through untouched so they still fail at execution time, preserving the
// original runtime error surface.
func Predecode(p *Program) (*Resolved, error) {
	res := &Resolved{
		Methods: make([][]RInstr, len(p.Methods)),
		Fused:   make([][]RInstr, len(p.Methods)),
		Wide:    make([][]RInstr, len(p.Methods)),
	}
	for mi, m := range p.Methods {
		if m.Native {
			continue
		}
		code := make([]RInstr, len(m.Code))
		for pc, in := range m.Code {
			r := RInstr{Op: in.Op, Branch: in.Op.IsBranch(), A: in.A, B: in.B}
			switch in.Op {
			case OpIConst:
				r.I = int64(in.A)
			case OpLConst:
				if int(in.A) < 0 || int(in.A) >= len(p.IntPool) {
					return nil, predecodeErr(m, pc, "lconst pool index %d of %d", in.A, len(p.IntPool))
				}
				r.Op = OpIConst
				r.I = p.IntPool[in.A]
			case OpFConst:
				if int(in.A) < 0 || int(in.A) >= len(p.FloatPool) {
					return nil, predecodeErr(m, pc, "fconst pool index %d of %d", in.A, len(p.FloatPool))
				}
				r.F = p.FloatPool[in.A]
			case OpSConst:
				if int(in.A) < 0 || int(in.A) >= len(p.StrPool) {
					return nil, predecodeErr(m, pc, "sconst pool index %d of %d", in.A, len(p.StrPool))
				}
			case OpJmp, OpJz, OpJnz:
				if int(in.A) < 0 || int(in.A) >= len(m.Code) {
					return nil, predecodeErr(m, pc, "jump target %d outside method of %d instructions", in.A, len(m.Code))
				}
			case OpCall, OpSpawn:
				if int(in.A) < 0 || int(in.A) >= len(p.Methods) {
					return nil, predecodeErr(m, pc, "%s target %d of %d methods", in.Op, in.A, len(p.Methods))
				}
				if in.Op == OpSpawn {
					callee := p.Methods[in.A]
					if callee.Native {
						return nil, predecodeErr(m, pc, "spawn of native method %s", callee.Name)
					}
					if int(in.B) != callee.NArgs {
						return nil, predecodeErr(m, pc, "spawn passes %d args, %s takes %d", in.B, callee.Name, callee.NArgs)
					}
				}
			case OpNew:
				if int(in.A) < 0 || int(in.A) >= len(p.Classes) {
					return nil, predecodeErr(m, pc, "new of class %d of %d", in.A, len(p.Classes))
				}
				cls := &p.Classes[in.A]
				// Fold the per-class allocation parameters so the
				// interpreter does not touch the class table.
				r.I = int64(len(cls.Fields))
				if cls.Finalizer >= 0 {
					r.B = 1
				} else {
					r.B = 0
				}
			case OpGetS, OpPutS:
				if int(in.A) < 0 || int(in.A) >= len(p.Statics) {
					return nil, predecodeErr(m, pc, "static slot %d of %d", in.A, len(p.Statics))
				}
			case OpLoad, OpStore:
				if int(in.A) < 0 || int(in.A) >= m.NLocals {
					return nil, predecodeErr(m, pc, "local slot %d of %d", in.A, m.NLocals)
				}
			case OpNewArr:
				if in.A != ElemInt && in.A != ElemFloat && in.A != ElemRef {
					return nil, predecodeErr(m, pc, "bad array element kind %d", in.A)
				}
			}
			code[pc] = r
		}
		res.Methods[mi] = code
		res.Fused[mi] = fuse(code)
		res.Wide[mi] = widefuse(code)
	}
	return res, nil
}
