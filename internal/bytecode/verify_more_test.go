package bytecode

import (
	"errors"
	"strings"
	"testing"
)

// mustAssemble assembles src or fails the test. The result has already
// passed Verify once; tests below mutate it to exercise specific rejections.
func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := AssembleString(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

// wantVerifyError asserts Verify rejects p with ErrVerify mentioning frag.
func wantVerifyError(t *testing.T, p *Program, frag string) {
	t.Helper()
	err := Verify(p)
	if err == nil {
		t.Fatalf("Verify accepted invalid program (wanted error containing %q)", frag)
	}
	if !errors.Is(err, ErrVerify) {
		t.Fatalf("error %v is not ErrVerify", err)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("error %q does not mention %q", err, frag)
	}
}

const fieldProgSrc = `
class Pair a b
class Single x
method main 0 void
  new Pair
  getf Pair.b
  pop
  ret
end
`

func TestVerifyFieldOperandBounds(t *testing.T) {
	// The assembled program uses field index 1 (Pair.b) legitimately.
	p := mustAssemble(t, fieldProgSrc)
	if err := Verify(p); err != nil {
		t.Fatalf("valid field access rejected: %v", err)
	}
	getfPC := -1
	for pc, in := range p.Methods[p.Entry].Code {
		if in.Op == OpGetF {
			getfPC = pc
		}
	}
	if getfPC < 0 {
		t.Fatal("no getf in assembled program")
	}

	for _, bad := range []int32{-1, 2, 1 << 20} {
		p := mustAssemble(t, fieldProgSrc)
		p.Methods[p.Entry].Code[getfPC].A = bad
		wantVerifyError(t, p, "field index")
	}

	// putf gets the same check.
	p = mustAssemble(t, fieldProgSrc)
	m := p.Methods[p.Entry]
	m.Code[getfPC] = Instr{Op: OpPutF, A: 7}
	// putf pops two, so feed it another operand first.
	m.Code = append([]Instr{{Op: OpIConst, A: 0}}, m.Code...)
	wantVerifyError(t, p, "field index")
}

func TestVerifyFieldOpWithNoClasses(t *testing.T) {
	p := &Program{
		Methods: []*Method{{
			Name: "main", NLocals: 0,
			Code: []Instr{
				{Op: OpIConst, A: 0},
				{Op: OpGetF, A: 0},
				{Op: OpPop},
				{Op: OpRet},
			},
		}},
		Entry: 0,
	}
	wantVerifyError(t, p, "field index")
}

const monitorProgSrc = `
static Main.lock
class Lock dummy
method main 0 void
  new Lock
  puts Main.lock
  gets Main.lock
  menter
  gets Main.lock
  wait
  gets Main.lock
  notify
  gets Main.lock
  notifyall
  gets Main.lock
  mexit
  ret
end
`

func TestVerifyMonitorOps(t *testing.T) {
	p := mustAssemble(t, monitorProgSrc)
	if err := Verify(p); err != nil {
		t.Fatalf("valid monitor program rejected: %v", err)
	}

	// Each monitor op pops a reference; at depth 0 it must be rejected as
	// stack underflow, not silently accepted.
	for _, op := range []Opcode{OpMEnter, OpMExit, OpWait, OpNotify, OpNotifyAll} {
		p := &Program{
			Methods: []*Method{{
				Name: "main",
				Code: []Instr{{Op: op}, {Op: OpRet}},
			}},
			Entry: 0,
		}
		wantVerifyError(t, p, "underflow")
	}
}

const spawnProgSrc = `
method worker 2 void
  ret
end
method main 0 void
  iconst 1
  iconst 2
  spawn worker 2
  join
  ret
end
`

func TestVerifySpawnOps(t *testing.T) {
	p := mustAssemble(t, spawnProgSrc)
	if err := Verify(p); err != nil {
		t.Fatalf("valid spawn program rejected: %v", err)
	}
	spawnPC := -1
	main := p.Methods[p.Entry]
	for pc, in := range main.Code {
		if in.Op == OpSpawn {
			spawnPC = pc
		}
	}
	if spawnPC < 0 {
		t.Fatal("no spawn in assembled program")
	}

	// Method index out of range.
	p = mustAssemble(t, spawnProgSrc)
	p.Methods[p.Entry].Code[spawnPC].A = 99
	wantVerifyError(t, p, "method index")

	p = mustAssemble(t, spawnProgSrc)
	p.Methods[p.Entry].Code[spawnPC].A = -1
	wantVerifyError(t, p, "method index")

	// Arity mismatch between spawn's B and the callee.
	p = mustAssemble(t, spawnProgSrc)
	p.Methods[p.Entry].Code[spawnPC].B = 1
	wantVerifyError(t, p, "arity")

	// Spawning a native method is rejected.
	p = mustAssemble(t, spawnProgSrc)
	p.Methods = append(p.Methods, &Method{
		Name: "nat", NativeSig: "sys.rand", NArgs: 2, NLocals: 2, Native: true,
	})
	p.Methods[p.Entry].Code[spawnPC].A = int32(len(p.Methods) - 1)
	wantVerifyError(t, p, "native")

	// join pops the thread ref; at depth 0 it underflows.
	p = &Program{
		Methods: []*Method{{Name: "main", Code: []Instr{{Op: OpJoin}, {Op: OpRet}}}},
		Entry:   0,
	}
	wantVerifyError(t, p, "underflow")
}

const nativeProgSrc = `
native print io.print 1 void
native rand sys.rand 0 value
method main 0 void
  call rand
  pop
  sconst "hi"
  call print
  ret
end
`

func TestVerifyNativeCallOps(t *testing.T) {
	p := mustAssemble(t, nativeProgSrc)
	if err := Verify(p); err != nil {
		t.Fatalf("valid native-call program rejected: %v", err)
	}

	// A native method must carry a signature and no code.
	p = mustAssemble(t, nativeProgSrc)
	p.Methods[0].NativeSig = ""
	wantVerifyError(t, p, "signature")

	p = mustAssemble(t, nativeProgSrc)
	p.Methods[0].Code = []Instr{{Op: OpRet}}
	wantVerifyError(t, p, "native method with code")

	// Calling a native that pops an argument underflows at depth 0.
	p = mustAssemble(t, nativeProgSrc)
	main := p.Methods[p.Entry]
	main.Code = append([]Instr{}, main.Code...)
	// Rewrite to: call print (1 arg) with empty stack.
	printIdx := int32(-1)
	for i, m := range p.Methods {
		if m.Name == "print" {
			printIdx = int32(i)
		}
	}
	main.Code = []Instr{{Op: OpCall, A: printIdx}, {Op: OpRet}}
	wantVerifyError(t, p, "underflow")

	// The entry method must not be native.
	p = mustAssemble(t, nativeProgSrc)
	p.Entry = 0 // print
	wantVerifyError(t, p, "native")
}

// TestVerifyFieldRoundTripClosure documents why the field check matters to
// the binary fuzzer: a decoded image with a wild getf index used to verify
// clean yet disassemble to an un-reassemblable "getf <n>" form.
func TestVerifyFieldRoundTripClosure(t *testing.T) {
	p := mustAssemble(t, fieldProgSrc)
	for pc, in := range p.Methods[p.Entry].Code {
		if in.Op == OpGetF {
			p.Methods[p.Entry].Code[pc].A = 9
		}
	}
	img, err := EncodeBytes(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBytes(img); err == nil {
		t.Fatal("decoder accepted image with out-of-range field index")
	} else if !errors.Is(err, ErrBadImage) {
		t.Fatalf("error %v is not ErrBadImage", err)
	}
}
