package bytecode

// Wide superinstruction fusion (the threaded engine's code tier).
//
// Resolved.Wide collapses multi-instruction idioms into single wide opcodes,
// chosen from the opcode-pair/idiom frequencies the six benchmark programs
// execute (`ftvm-bench -pairfreq`; see internal/bytecode/pairfreq). The
// shapes fall into four families:
//
//   - simple leads: two adjacent pushes/moves with no failure path
//     (load+iconst, load+load, gets+load, load+gets, store+load, store+jmp);
//   - ALU groups: an integer ALU op with its operand pushes and/or the
//     following store folded in (up to load+iconst+alu+store in one
//     dispatch). Only the eight total ALU ops participate (div/rem keep
//     their fault path un-fused);
//   - compare-branch idioms: the minilang compiler lowers every relational
//     operator to `icmp` plus a fixed arithmetic epilogue ending in jz/jnz.
//     Each (relation, branch-sense) combination becomes one opcode, with
//     optional load+iconst / load+load leads folded in, so a whole loop
//     condition is a single dispatch;
//   - compare-value idioms: the same epilogues without the trailing jump
//     (the relation's boolean pushed instead).
//
// Like the pair tier (fuse), wide fusion is per-slot: every pc holds the
// best group *starting at that pc*, so jumping into the middle of a group
// lands on a valid instruction stream. Group selection is a right-to-left
// dynamic program minimizing dispatches along the fallthrough chain
// (greedy longest-match strands epilogue tails; see TestWideFuseDP).
//
// Hard rule: a wide group must be observationally identical to its unfused
// expansion — same stack/local effects, same branch-counter positions, same
// error values with the same completed-instruction counts. Shapes therefore
// never span allocating, blocking, or monitor instructions, and at most one
// faultable instruction (the first type check, or the single trailing
// conditional) appears per group.

// WideShape classifies a wide opcode's operand/stack behavior. The threaded
// compiler (internal/vm) switches on it to pick a specialized closure.
type WideShape uint8

const (
	WShapeNone    WideShape = iota
	WShapeLC                // load A;  iconst I                     w2
	WShapeLL                // load A;  load B                       w2
	WShapeGetsL             // gets A;  load B                       w2
	WShapeLGets             // load A;  gets B                       w2
	WShapeStL               // store A; load B                       w2
	WShapeStJmp             // store A; jmp B                        w2 (branch)
	WShapeAluSt             // alu;     store A                      w2
	WShapeLCAlu             // load A;  iconst I; alu                w3
	WShapeLLAlu             // load A;  load B;   alu                w3
	WShapeCAluSt            // iconst I; alu;     store A            w3
	WShapeLAluSt            // load B;  alu;      store A            w3
	WShapeLCAluSt           // load A;  iconst I; alu; store B       w4
	WShapeLLAluSt           // load A;  load B;   alu; store I       w4
	WShapeCmpBr             // icmp; <rel epilogue>; jz/jnz A        (branch)
	WShapeCmpV              // icmp; <rel epilogue>  (push the bool)
	WShapeLCCmpBr           // load A; iconst I; <cmp-br>; j* B      (branch)
	WShapeLLCmpBr           // load A; load B;   <cmp-br>; j* I      (branch)
)

// WideRel is the relation a compare idiom computes on cmpInt's -1/0/+1.
type WideRel uint8

const (
	RelNone WideRel = iota
	RelLt           // c < 0
	RelGe           // c >= 0
	RelGt           // c > 0
	RelLe           // c <= 0
	RelEq           // c == 0
	RelNe           // c != 0
)

func (r WideRel) String() string {
	switch r {
	case RelLt:
		return "lt"
	case RelGe:
		return "ge"
	case RelGt:
		return "gt"
	case RelLe:
		return "le"
	case RelEq:
		return "eq"
	case RelNe:
		return "ne"
	default:
		return "rel?"
	}
}

// WideInfo describes one wide opcode.
type WideInfo struct {
	Shape WideShape
	ALU   Opcode  // base ALU opcode for the ALU shapes (OpIAdd..OpIShr)
	Rel   WideRel // relation for the compare shapes
	JmpNZ bool    // branch sense for *CmpBr: true = trailing jnz, false = jz
	Width int32   // instructions folded into the group
	Name  string
}

// Branch reports whether the group ends in a branch-counted jump.
func (wi WideInfo) Branch() bool {
	switch wi.Shape {
	case WShapeStJmp, WShapeCmpBr, WShapeLCCmpBr, WShapeLLCmpBr:
		return true
	}
	return false
}

// wideALU is the ALU subset that participates in wide shapes, in opcode-
// allocation order. Div/rem are excluded: their divide-by-zero fault would be
// a second error point mid-group.
var wideALU = [...]Opcode{OpIAdd, OpISub, OpIMul, OpIAnd, OpIOr, OpIXor, OpIShl, OpIShr}

// wideRels is the relation allocation order; epilogue widths per the
// minilang lowering (arithmetic ops after the icmp, before any jump).
var wideRels = [...]struct {
	rel  WideRel
	tail int32
}{
	{RelLt, 3}, {RelGe, 5}, {RelGt, 4}, {RelLe, 6}, {RelEq, 4}, {RelNe, 2},
}

// The wide opcode space starts directly after the pair-fusion tier.
const wideBase = OpICmpL + 1

var (
	wideInfo  = map[Opcode]WideInfo{}
	wideNames = map[Opcode]string{}
	// Per-family opcode bases, in allocation order (see init).
	wLC, wLL, wGetsL, wLGets, wStL, wStJmp Opcode
	wAluSt, wLCAlu, wLLAlu, wCAluSt        Opcode
	wLAluSt, wLCAluSt, wLLAluSt            Opcode
	wCmpBr, wCmpV, wLCCmpBr, wLLCmpBr      Opcode
	wideEnd                                Opcode
)

func init() {
	next := wideBase
	alloc := func(wi WideInfo) Opcode {
		op := next
		next++
		wideInfo[op] = wi
		wideNames[op] = wi.Name
		return op
	}
	simple := func(shape WideShape, name string) Opcode {
		return alloc(WideInfo{Shape: shape, Width: 2, Name: name})
	}
	wLC = simple(WShapeLC, "w.lc")
	wLL = simple(WShapeLL, "w.ll")
	wGetsL = simple(WShapeGetsL, "w.gets.l")
	wLGets = simple(WShapeLGets, "w.l.gets")
	wStL = simple(WShapeStL, "w.st.l")
	wStJmp = simple(WShapeStJmp, "w.st.jmp")

	aluFam := func(shape WideShape, width int32, format func(alu string) string) Opcode {
		base := next
		for _, alu := range wideALU {
			alloc(WideInfo{Shape: shape, ALU: alu, Width: width, Name: format(opTable[alu].name)})
		}
		return base
	}
	wAluSt = aluFam(WShapeAluSt, 2, func(a string) string { return "w." + a + ".st" })
	wLCAlu = aluFam(WShapeLCAlu, 3, func(a string) string { return "w.lc." + a })
	wLLAlu = aluFam(WShapeLLAlu, 3, func(a string) string { return "w.ll." + a })
	wCAluSt = aluFam(WShapeCAluSt, 3, func(a string) string { return "w.c." + a + ".st" })
	wLAluSt = aluFam(WShapeLAluSt, 3, func(a string) string { return "w.l." + a + ".st" })
	wLCAluSt = aluFam(WShapeLCAluSt, 4, func(a string) string { return "w.lc." + a + ".st" })
	wLLAluSt = aluFam(WShapeLLAluSt, 4, func(a string) string { return "w.ll." + a + ".st" })

	cmpFam := func(shape WideShape, lead int32, prefix string) Opcode {
		base := next
		for _, r := range wideRels {
			// icmp + epilogue (+ trailing jump for the Br shapes).
			w := 1 + r.tail
			if shape == WShapeCmpV {
				alloc(WideInfo{Shape: shape, Rel: r.rel, Width: lead + w, Name: prefix + r.rel.String() + ".v"})
				continue
			}
			alloc(WideInfo{Shape: shape, Rel: r.rel, Width: lead + w + 1, Name: prefix + r.rel.String() + ".z"})
			alloc(WideInfo{Shape: shape, Rel: r.rel, JmpNZ: true, Width: lead + w + 1, Name: prefix + r.rel.String() + ".nz"})
		}
		return base
	}
	wCmpBr = cmpFam(WShapeCmpBr, 0, "w.br.")
	wCmpV = cmpFam(WShapeCmpV, 0, "w.")
	wLCCmpBr = cmpFam(WShapeLCCmpBr, 2, "w.lc.br.")
	wLLCmpBr = cmpFam(WShapeLLCmpBr, 2, "w.ll.br.")
	wideEnd = next
}

// WideOpInfo returns the descriptor of a wide opcode.
func WideOpInfo(op Opcode) (WideInfo, bool) {
	wi, ok := wideInfo[op]
	return wi, ok
}

// WideOps returns every wide opcode in allocation order.
func WideOps() []Opcode {
	out := make([]Opcode, 0, wideEnd-wideBase)
	for op := wideBase; op < wideEnd; op++ {
		out = append(out, op)
	}
	return out
}

// relOp returns the CmpBr/CmpV/LCCmpBr/LLCmpBr opcode for (family base, rel,
// sense). Br families allocate z/nz per relation; CmpV allocates one.
func relOp(base Opcode, rel WideRel, jnz bool, vform bool) Opcode {
	idx := Opcode(0)
	for i, r := range wideRels {
		if r.rel == rel {
			idx = Opcode(i)
			break
		}
	}
	if vform {
		return base + idx
	}
	op := base + idx*2
	if jnz {
		op++
	}
	return op
}

// wcand is one fusion candidate starting at a pc.
type wcand struct {
	in       RInstr
	width    int32
	terminal bool // ends in an unconditional transfer: no fallthrough cost
}

// matchEpilogue matches the arithmetic tail of a relational idiom at code[pc]
// == OpICmp. It appends a candidate stage for every prefix that is itself a
// complete relation (lt is a prefix of ge, gt of le, ne of eq), each as both
// the value form and — when a jz/jnz follows — the branch form. lead > 0
// folds a load+iconst / load+load prefix into the Br forms (LC/LL families).
func appendCmpCands(cands []wcand, code []RInstr, pc int, lead int32, leadIn RInstr) []wcand {
	n := len(code)
	op := func(i int) Opcode {
		if i >= n {
			return OpInvalid
		}
		return code[i].Op
	}
	isC := func(i int, v int64) bool { return i < n && code[i].Op == OpIConst && code[i].I == v }
	emit := func(rel WideRel, end int) []wcand {
		// Value form (no lead variants: only the bare CmpV family exists).
		if lead == 0 {
			vop := relOp(wCmpV, rel, false, true)
			cands = append(cands, wcand{in: RInstr{Op: vop}, width: wideInfo[vop].Width})
		}
		// Branch forms.
		if j := op(end); j == OpJz || j == OpJnz {
			var bop Opcode
			in := leadIn
			switch lead {
			case 0:
				bop = relOp(wCmpBr, rel, j == OpJnz, false)
				in = RInstr{A: code[end].A}
			case 2:
				if leadIn.Op == wLC {
					bop = relOp(wLCCmpBr, rel, j == OpJnz, false)
					in.B = code[end].A
				} else {
					bop = relOp(wLLCmpBr, rel, j == OpJnz, false)
					in.I = int64(code[end].A)
				}
			}
			in.Op = bop
			in.Branch = true
			cands = append(cands, wcand{in: in, width: wideInfo[bop].Width})
		}
		return cands
	}
	switch {
	case isC(pc+1, 63) && op(pc+2) == OpIShr && op(pc+3) == OpINeg:
		cands = emit(RelLt, pc+4)
		if isC(pc+4, 1) && op(pc+5) == OpIXor {
			cands = emit(RelGe, pc+6)
		}
	case isC(pc+1, 1) && op(pc+2) == OpIAdd && isC(pc+3, 1) && op(pc+4) == OpIShr:
		cands = emit(RelGt, pc+5)
		if isC(pc+5, 1) && op(pc+6) == OpIXor {
			cands = emit(RelLe, pc+7)
		}
	case op(pc+1) == OpDup && op(pc+2) == OpIMul:
		cands = emit(RelNe, pc+3)
		if isC(pc+3, 1) && op(pc+4) == OpIXor {
			cands = emit(RelEq, pc+5)
		}
	}
	return cands
}

// aluIdx returns the wideALU index of op, or -1.
func aluIdx(op Opcode) int32 {
	for i, a := range wideALU {
		if a == op {
			return int32(i)
		}
	}
	return -1
}

// wideCands returns every fusion candidate starting at pc: the base
// instruction (width 1), the pair tier, and all wide matches.
func wideCands(code []RInstr, pc int) []wcand {
	n := len(code)
	in0 := code[pc]
	op := func(i int) Opcode {
		if i >= n {
			return OpInvalid
		}
		return code[i].Op
	}
	baseTerminal := in0.Op == OpJmp || in0.Op == OpRet || in0.Op == OpRetV || in0.Op == OpHalt
	cands := []wcand{{in: in0, width: 1, terminal: baseTerminal}}

	// Pair tier (same matches as fuse()).
	if pc+1 < n {
		if d, ok := fuseDelta[code[pc+1].Op]; ok {
			switch in0.Op {
			case OpIConst:
				cands = append(cands, wcand{in: RInstr{Op: OpIAddC + d, I: in0.I}, width: 2})
			case OpLoad:
				cands = append(cands, wcand{in: RInstr{Op: OpIAddC + fuseWidth + d, A: in0.A}, width: 2})
			}
		}
	}

	switch in0.Op {
	case OpLoad:
		switch op(pc + 1) {
		case OpIConst:
			lead := RInstr{Op: wLC, A: in0.A, I: code[pc+1].I}
			cands = append(cands, wcand{in: lead, width: 2})
			if ai := aluIdx(op(pc + 2)); ai >= 0 {
				if op(pc+3) == OpStore {
					cands = append(cands, wcand{in: RInstr{Op: wLCAluSt + Opcode(ai), A: in0.A, I: code[pc+1].I, B: code[pc+3].A}, width: 4})
				}
				cands = append(cands, wcand{in: RInstr{Op: wLCAlu + Opcode(ai), A: in0.A, I: code[pc+1].I}, width: 3})
			}
			if op(pc+2) == OpICmp {
				cands = appendCmpCands(cands, code, pc+2, 2, lead)
			}
		case OpLoad:
			lead := RInstr{Op: wLL, A: in0.A, B: code[pc+1].A}
			cands = append(cands, wcand{in: lead, width: 2})
			if ai := aluIdx(op(pc + 2)); ai >= 0 {
				if op(pc+3) == OpStore {
					cands = append(cands, wcand{in: RInstr{Op: wLLAluSt + Opcode(ai), A: in0.A, B: code[pc+1].A, I: int64(code[pc+3].A)}, width: 4})
				}
				cands = append(cands, wcand{in: RInstr{Op: wLLAlu + Opcode(ai), A: in0.A, B: code[pc+1].A}, width: 3})
			}
			if op(pc+2) == OpICmp {
				cands = appendCmpCands(cands, code, pc+2, 2, lead)
			}
		case OpGetS:
			cands = append(cands, wcand{in: RInstr{Op: wLGets, A: in0.A, B: code[pc+1].A}, width: 2})
		default:
			if ai := aluIdx(op(pc + 1)); ai >= 0 && op(pc+2) == OpStore {
				cands = append(cands, wcand{in: RInstr{Op: wLAluSt + Opcode(ai), B: in0.A, A: code[pc+2].A}, width: 3})
			}
		}
	case OpIConst:
		if ai := aluIdx(op(pc + 1)); ai >= 0 && op(pc+2) == OpStore {
			cands = append(cands, wcand{in: RInstr{Op: wCAluSt + Opcode(ai), I: in0.I, A: code[pc+2].A}, width: 3})
		}
	case OpGetS:
		if op(pc+1) == OpLoad {
			cands = append(cands, wcand{in: RInstr{Op: wGetsL, A: in0.A, B: code[pc+1].A}, width: 2})
		}
	case OpStore:
		switch op(pc + 1) {
		case OpLoad:
			cands = append(cands, wcand{in: RInstr{Op: wStL, A: in0.A, B: code[pc+1].A}, width: 2})
		case OpJmp:
			cands = append(cands, wcand{in: RInstr{Op: wStJmp, A: in0.A, B: code[pc+1].A, Branch: true}, width: 2, terminal: true})
		}
	case OpICmp:
		cands = appendCmpCands(cands, code, pc, 0, RInstr{})
	default:
		if ai := aluIdx(in0.Op); ai >= 0 && op(pc+1) == OpStore {
			cands = append(cands, wcand{in: RInstr{Op: wAluSt + Opcode(ai), A: code[pc+1].A}, width: 2})
		}
	}
	return cands
}

// widefuse builds the wide superinstruction stream: per-slot best groups
// chosen by a right-to-left DP that minimizes dispatches along fallthrough.
// Every slot keeps a valid group for execution entering at that slot, so
// arbitrary jump targets remain correct.
func widefuse(code []RInstr) []RInstr {
	n := len(code)
	out := make([]RInstr, n)
	if n == 0 {
		return out
	}
	const inf = int32(1) << 30
	cost := make([]int32, n+1)
	for pc := n - 1; pc >= 0; pc-- {
		best := wcand{}
		bestCost := inf
		for _, c := range wideCands(code, pc) {
			cc := int32(1)
			if !c.terminal && int(c.width) < n-pc {
				cc += cost[pc+int(c.width)]
			}
			// Strictly-better, or equal-cost-but-wider (fewer re-entries
			// when execution falls into the tail).
			if cc < bestCost || (cc == bestCost && c.width > best.width) {
				best, bestCost = c, cc
			}
		}
		cost[pc] = bestCost
		out[pc] = best.in
	}
	return out
}
