package bytecode

// Fusion-set pin (wide tier): the wide opcode space — which idioms are fused,
// how many instructions each folds, and which end in a counted branch — is
// part of the replication contract surface (the threaded engine's fault and
// branch-count positions are derived from Width and Branch), so changes must
// be explicit diffs against this table, not silent fallout of an init() edit.
// The companion dynamic-frequency pin lives in pairfreq (TestFusionSetPinned);
// the DP segmentation behavior is pinned by TestWideFuseDP below.

import (
	"fmt"
	"os"
	"testing"
)

// wideOpsPinned is the complete wide tier in allocation order:
// {name, folded width, ends-in-counted-branch}. Regenerate with
// FTVM_GOLDEN_PRINT=1 go test -run TestWideOpsPinned ./internal/bytecode
var wideOpsPinned = []struct {
	name   string
	width  int32
	branch bool
}{
	{"w.lc", 2, false},
	{"w.ll", 2, false},
	{"w.gets.l", 2, false},
	{"w.l.gets", 2, false},
	{"w.st.l", 2, false},
	{"w.st.jmp", 2, true},
	{"w.iadd.st", 2, false},
	{"w.isub.st", 2, false},
	{"w.imul.st", 2, false},
	{"w.iand.st", 2, false},
	{"w.ior.st", 2, false},
	{"w.ixor.st", 2, false},
	{"w.ishl.st", 2, false},
	{"w.ishr.st", 2, false},
	{"w.lc.iadd", 3, false},
	{"w.lc.isub", 3, false},
	{"w.lc.imul", 3, false},
	{"w.lc.iand", 3, false},
	{"w.lc.ior", 3, false},
	{"w.lc.ixor", 3, false},
	{"w.lc.ishl", 3, false},
	{"w.lc.ishr", 3, false},
	{"w.ll.iadd", 3, false},
	{"w.ll.isub", 3, false},
	{"w.ll.imul", 3, false},
	{"w.ll.iand", 3, false},
	{"w.ll.ior", 3, false},
	{"w.ll.ixor", 3, false},
	{"w.ll.ishl", 3, false},
	{"w.ll.ishr", 3, false},
	{"w.c.iadd.st", 3, false},
	{"w.c.isub.st", 3, false},
	{"w.c.imul.st", 3, false},
	{"w.c.iand.st", 3, false},
	{"w.c.ior.st", 3, false},
	{"w.c.ixor.st", 3, false},
	{"w.c.ishl.st", 3, false},
	{"w.c.ishr.st", 3, false},
	{"w.l.iadd.st", 3, false},
	{"w.l.isub.st", 3, false},
	{"w.l.imul.st", 3, false},
	{"w.l.iand.st", 3, false},
	{"w.l.ior.st", 3, false},
	{"w.l.ixor.st", 3, false},
	{"w.l.ishl.st", 3, false},
	{"w.l.ishr.st", 3, false},
	{"w.lc.iadd.st", 4, false},
	{"w.lc.isub.st", 4, false},
	{"w.lc.imul.st", 4, false},
	{"w.lc.iand.st", 4, false},
	{"w.lc.ior.st", 4, false},
	{"w.lc.ixor.st", 4, false},
	{"w.lc.ishl.st", 4, false},
	{"w.lc.ishr.st", 4, false},
	{"w.ll.iadd.st", 4, false},
	{"w.ll.isub.st", 4, false},
	{"w.ll.imul.st", 4, false},
	{"w.ll.iand.st", 4, false},
	{"w.ll.ior.st", 4, false},
	{"w.ll.ixor.st", 4, false},
	{"w.ll.ishl.st", 4, false},
	{"w.ll.ishr.st", 4, false},
	{"w.br.lt.z", 5, true},
	{"w.br.lt.nz", 5, true},
	{"w.br.ge.z", 7, true},
	{"w.br.ge.nz", 7, true},
	{"w.br.gt.z", 6, true},
	{"w.br.gt.nz", 6, true},
	{"w.br.le.z", 8, true},
	{"w.br.le.nz", 8, true},
	{"w.br.eq.z", 6, true},
	{"w.br.eq.nz", 6, true},
	{"w.br.ne.z", 4, true},
	{"w.br.ne.nz", 4, true},
	{"w.lt.v", 4, false},
	{"w.ge.v", 6, false},
	{"w.gt.v", 5, false},
	{"w.le.v", 7, false},
	{"w.eq.v", 5, false},
	{"w.ne.v", 3, false},
	{"w.lc.br.lt.z", 7, true},
	{"w.lc.br.lt.nz", 7, true},
	{"w.lc.br.ge.z", 9, true},
	{"w.lc.br.ge.nz", 9, true},
	{"w.lc.br.gt.z", 8, true},
	{"w.lc.br.gt.nz", 8, true},
	{"w.lc.br.le.z", 10, true},
	{"w.lc.br.le.nz", 10, true},
	{"w.lc.br.eq.z", 8, true},
	{"w.lc.br.eq.nz", 8, true},
	{"w.lc.br.ne.z", 6, true},
	{"w.lc.br.ne.nz", 6, true},
	{"w.ll.br.lt.z", 7, true},
	{"w.ll.br.lt.nz", 7, true},
	{"w.ll.br.ge.z", 9, true},
	{"w.ll.br.ge.nz", 9, true},
	{"w.ll.br.gt.z", 8, true},
	{"w.ll.br.gt.nz", 8, true},
	{"w.ll.br.le.z", 10, true},
	{"w.ll.br.le.nz", 10, true},
	{"w.ll.br.eq.z", 8, true},
	{"w.ll.br.eq.nz", 8, true},
	{"w.ll.br.ne.z", 6, true},
	{"w.ll.br.ne.nz", 6, true},
}

func TestWideOpsPinned(t *testing.T) {
	ops := WideOps()
	if os.Getenv("FTVM_GOLDEN_PRINT") != "" {
		for _, op := range ops {
			wi, ok := WideOpInfo(op)
			if !ok {
				t.Fatalf("WideOps returned %d with no info", op)
			}
			fmt.Printf("\t{%q, %d, %v},\n", wi.Name, wi.Width, wi.Branch())
		}
		return
	}
	if len(wideOpsPinned) == 0 {
		t.Fatal("wideOpsPinned is empty: run with FTVM_GOLDEN_PRINT=1 and pin the output")
	}
	if len(ops) != len(wideOpsPinned) {
		t.Fatalf("wide tier has %d opcodes, pin table has %d", len(ops), len(wideOpsPinned))
	}
	for i, op := range ops {
		wi, ok := WideOpInfo(op)
		if !ok {
			t.Fatalf("WideOps returned %d with no info", op)
		}
		p := wideOpsPinned[i]
		if wi.Name != p.name || wi.Width != p.width || wi.Branch() != p.branch {
			t.Errorf("wide op %d drifted: got {%q, %d, %v}, pinned {%q, %d, %v}",
				i, wi.Name, wi.Width, wi.Branch(), p.name, p.width, p.branch)
		}
	}
}

// wf builds an RInstr the way Predecode would for the ops widefuse inspects.
func wf(op Opcode, a int32, i int64) RInstr {
	return RInstr{Op: op, Branch: op.IsBranch(), A: a, I: i}
}

// TestWideFuseDP pins the segmentation behavior the doc comment promises:
// group selection is a dispatch-minimizing DP, not greedy longest-match, and
// every interior slot keeps an executable instruction for jump-ins.
func TestWideFuseDP(t *testing.T) {
	t.Run("declines pair that strands an epilogue", func(t *testing.T) {
		// iconst;icmp is pair-fusable (OpICmpC) and is the widest match at
		// slot 0 — but taking it strands the dup;imul;jz tail (4 dispatches).
		// The DP leaves the iconst bare so the whole relational idiom fuses
		// into one compare-branch group (2 dispatches).
		code := []RInstr{
			wf(OpIConst, 0, 5),
			wf(OpICmp, 0, 0),
			wf(OpDup, 0, 0),
			wf(OpIMul, 0, 0),
			wf(OpJz, 0, 0),
		}
		out := widefuse(code)
		if out[0].Op != OpIConst {
			t.Fatalf("slot 0: got %v, want bare iconst (greedy would take icmpC)", out[0].Op)
		}
		wi, ok := WideOpInfo(out[1].Op)
		if !ok || wi.Shape != WShapeCmpBr || wi.Rel != RelNe || wi.JmpNZ || wi.Width != 4 {
			t.Fatalf("slot 1: got %v (info %+v), want w.br.ne.z covering the idiom", out[1].Op, wi)
		}
		// Interior slots stay executable for jumps into the group.
		if out[2].Op != OpDup || out[3].Op != OpIMul || out[4].Op != OpJz {
			t.Fatalf("interior slots rewritten: %v %v %v", out[2].Op, out[3].Op, out[4].Op)
		}
	})
	t.Run("whole loop condition is one dispatch", func(t *testing.T) {
		// load; iconst; icmp; iconst 63; ishr; ineg; jz — the minilang
		// lowering of `if (a < k)` — fuses to a single w.lc.br.lt.z group.
		code := []RInstr{
			wf(OpLoad, 2, 0),
			wf(OpIConst, 0, 9),
			wf(OpICmp, 0, 0),
			wf(OpIConst, 0, 63),
			wf(OpIShr, 0, 0),
			wf(OpINeg, 0, 0),
			wf(OpJz, 1, 0),
		}
		out := widefuse(code)
		wi, ok := WideOpInfo(out[0].Op)
		if !ok || wi.Shape != WShapeLCCmpBr || wi.Rel != RelLt || wi.JmpNZ || wi.Width != 7 {
			t.Fatalf("slot 0: got %v (info %+v), want w.lc.br.lt.z width 7", out[0].Op, wi)
		}
		if out[0].A != 2 || out[0].I != 9 || out[0].B != 1 {
			t.Fatalf("slot 0 operands: %+v, want A=2 (slot) I=9 (const) B=1 (target)", out[0])
		}
	})
	t.Run("load-const-alu-store is one group", func(t *testing.T) {
		code := []RInstr{
			wf(OpLoad, 1, 0),
			wf(OpIConst, 0, 3),
			wf(OpIAdd, 0, 0),
			wf(OpStore, 4, 0),
		}
		out := widefuse(code)
		wi, ok := WideOpInfo(out[0].Op)
		if !ok || wi.Shape != WShapeLCAluSt || wi.ALU != OpIAdd || wi.Width != 4 {
			t.Fatalf("slot 0: got %v (info %+v), want w.lc.iadd.st", out[0].Op, wi)
		}
		if out[0].A != 1 || out[0].I != 3 || out[0].B != 4 {
			t.Fatalf("slot 0 operands: %+v, want A=1 I=3 B=4", out[0])
		}
	})
	t.Run("every slot holds a group valid at that entry", func(t *testing.T) {
		// Entering the lt idiom mid-way (e.g. a jump to the icmp) must see
		// the best group starting there: the bare compare-branch form.
		code := []RInstr{
			wf(OpLoad, 2, 0),
			wf(OpIConst, 0, 9),
			wf(OpICmp, 0, 0),
			wf(OpIConst, 0, 63),
			wf(OpIShr, 0, 0),
			wf(OpINeg, 0, 0),
			wf(OpJnz, 1, 0),
		}
		out := widefuse(code)
		wi, ok := WideOpInfo(out[2].Op)
		if !ok || wi.Shape != WShapeCmpBr || wi.Rel != RelLt || !wi.JmpNZ || wi.Width != 5 {
			t.Fatalf("slot 2: got %v (info %+v), want w.br.lt.nz width 5", out[2].Op, wi)
		}
	})
}
