// Package bytecode defines the FTVM instruction set and program model: a
// stack-machine ISA with monitors, thread spawning and native-method calls;
// the Program/Class/Method containers (the classfile analog); a text
// assembler and disassembler; a binary serialisation; and a structural
// verifier.
package bytecode

// Opcode identifies an FTVM instruction.
type Opcode uint8

// The FTVM instruction set. Operand meanings are given per opcode; A and B
// are int32 operands in Instr.
const (
	OpInvalid Opcode = iota

	// Constants and stack manipulation.
	OpNop
	OpIConst // push A as int (small constants)
	OpLConst // push IntPool[A]
	OpFConst // push FloatPool[A]
	OpSConst // push interned string StrPool[A]
	OpNull   // push null ref
	OpPop
	OpDup
	OpSwap

	// Locals.
	OpLoad  // push locals[A]
	OpStore // locals[A] = pop

	// Integer arithmetic / bitwise.
	OpIAdd
	OpISub
	OpIMul
	OpIDiv
	OpIRem
	OpINeg
	OpIAnd
	OpIOr
	OpIXor
	OpIShl
	OpIShr

	// Float arithmetic.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFNeg

	// Conversions.
	OpI2F
	OpF2I

	// Comparisons: pop b, pop a, push -1/0/1.
	OpICmp
	OpFCmp
	OpSCmp  // lexicographic string compare
	OpRefEq // pop two refs, push 1 if identical else 0

	// Control flow (each executed control-flow op increments br_cnt).
	OpJmp // pc = A
	OpJz  // pop int; if zero pc = A
	OpJnz // pop int; if non-zero pc = A

	// Calls (increment br_cnt). OpCall pops NArgs args (last arg on top).
	OpCall // invoke Methods[A]
	OpRet  // return no value
	OpRetV // return top of stack

	// Objects and statics.
	OpNew  // push new instance of Classes[A]
	OpGetF // pop ref, push field A
	OpPutF // pop value, pop ref, set field A
	OpGetS // push static slot A
	OpPutS // static slot A = pop

	// Arrays. OpNewArr A selects element kind: 0 int, 1 float, 2 ref.
	OpNewArr // pop length, push array
	OpALoad  // pop index, pop arrayref, push element
	OpAStore // pop value, pop index, pop arrayref
	OpALen   // pop arrayref, push length

	// Strings (immutable heap objects).
	OpSLen    // pop str, push length
	OpSCat    // pop b, pop a, push a+b
	OpSIdx    // pop index, pop str, push byte as int
	OpSSub    // pop end, pop start, pop str, push substring
	OpI2S     // pop int, push decimal string
	OpF2S     // pop float, push formatted string
	OpS2I     // pop str, push parsed int (0 on malformed)
	OpChr     // pop int, push 1-byte string
	OpHashStr // pop str, push deterministic 64-bit FNV hash as int

	// Monitors and condition variables (Java's synchronized/wait/notify).
	OpMEnter    // pop ref, acquire its monitor (reentrant)
	OpMExit     // pop ref, release its monitor
	OpWait      // pop ref, wait on its monitor (must hold it)
	OpNotify    // pop ref, wake one waiter
	OpNotifyAll // pop ref, wake all waiters

	// Threads.
	OpSpawn // pop B args, start Methods[A] in a new thread, push thread ref
	OpJoin  // pop thread ref, block until it terminates
	OpYield // voluntarily end the current scheduling quantum

	// Thread lifecycle support (used by the VM's synthetic $finish/$joinwait
	// methods; join/death are routed through ordinary monitors so that they
	// are replicated exactly like application synchronization).
	OpAlive    // pop thread ref, push 1 if the thread has not ended
	OpMarkDead // mark the current thread logically dead

	// Miscellaneous.
	OpHalt // terminate the whole VM normally
)

// opInfo describes static properties of an opcode for the verifier,
// assembler and disassembler.
type opInfo struct {
	name string
	// pop/push are stack effects; -1 means variable (resolved specially).
	pop, push int
	// operand usage: "" none, "imm" integer immediate, "int"/"float"/"str"
	// pool index, "label" jump target, "method", "class", "field", "static",
	// "elemkind".
	operand string
	branch  bool // counts toward br_cnt when executed
}

var opTable = map[Opcode]opInfo{
	OpNop:       {name: "nop"},
	OpIConst:    {name: "iconst", push: 1, operand: "imm"},
	OpLConst:    {name: "lconst", push: 1, operand: "int"},
	OpFConst:    {name: "fconst", push: 1, operand: "float"},
	OpSConst:    {name: "sconst", push: 1, operand: "str"},
	OpNull:      {name: "null", push: 1},
	OpPop:       {name: "pop", pop: 1},
	OpDup:       {name: "dup", pop: 1, push: 2},
	OpSwap:      {name: "swap", pop: 2, push: 2},
	OpLoad:      {name: "load", push: 1, operand: "imm"},
	OpStore:     {name: "store", pop: 1, operand: "imm"},
	OpIAdd:      {name: "iadd", pop: 2, push: 1},
	OpISub:      {name: "isub", pop: 2, push: 1},
	OpIMul:      {name: "imul", pop: 2, push: 1},
	OpIDiv:      {name: "idiv", pop: 2, push: 1},
	OpIRem:      {name: "irem", pop: 2, push: 1},
	OpINeg:      {name: "ineg", pop: 1, push: 1},
	OpIAnd:      {name: "iand", pop: 2, push: 1},
	OpIOr:       {name: "ior", pop: 2, push: 1},
	OpIXor:      {name: "ixor", pop: 2, push: 1},
	OpIShl:      {name: "ishl", pop: 2, push: 1},
	OpIShr:      {name: "ishr", pop: 2, push: 1},
	OpFAdd:      {name: "fadd", pop: 2, push: 1},
	OpFSub:      {name: "fsub", pop: 2, push: 1},
	OpFMul:      {name: "fmul", pop: 2, push: 1},
	OpFDiv:      {name: "fdiv", pop: 2, push: 1},
	OpFNeg:      {name: "fneg", pop: 1, push: 1},
	OpI2F:       {name: "i2f", pop: 1, push: 1},
	OpF2I:       {name: "f2i", pop: 1, push: 1},
	OpICmp:      {name: "icmp", pop: 2, push: 1},
	OpFCmp:      {name: "fcmp", pop: 2, push: 1},
	OpSCmp:      {name: "scmp", pop: 2, push: 1},
	OpRefEq:     {name: "refeq", pop: 2, push: 1},
	OpJmp:       {name: "jmp", operand: "label", branch: true},
	OpJz:        {name: "jz", pop: 1, operand: "label", branch: true},
	OpJnz:       {name: "jnz", pop: 1, operand: "label", branch: true},
	OpCall:      {name: "call", pop: -1, push: -1, operand: "method", branch: true},
	OpRet:       {name: "ret", branch: true},
	OpRetV:      {name: "retv", pop: 1, branch: true},
	OpNew:       {name: "new", push: 1, operand: "class"},
	OpGetF:      {name: "getf", pop: 1, push: 1, operand: "field"},
	OpPutF:      {name: "putf", pop: 2, operand: "field"},
	OpGetS:      {name: "gets", push: 1, operand: "static"},
	OpPutS:      {name: "puts", pop: 1, operand: "static"},
	OpNewArr:    {name: "newarr", pop: 1, push: 1, operand: "elemkind"},
	OpALoad:     {name: "aload", pop: 2, push: 1},
	OpAStore:    {name: "astore", pop: 3},
	OpALen:      {name: "alen", pop: 1, push: 1},
	OpSLen:      {name: "slen", pop: 1, push: 1},
	OpSCat:      {name: "scat", pop: 2, push: 1},
	OpSIdx:      {name: "sidx", pop: 2, push: 1},
	OpSSub:      {name: "ssub", pop: 3, push: 1},
	OpI2S:       {name: "i2s", pop: 1, push: 1},
	OpF2S:       {name: "f2s", pop: 1, push: 1},
	OpS2I:       {name: "s2i", pop: 1, push: 1},
	OpChr:       {name: "chr", pop: 1, push: 1},
	OpHashStr:   {name: "hashstr", pop: 1, push: 1},
	OpMEnter:    {name: "menter", pop: 1},
	OpMExit:     {name: "mexit", pop: 1},
	OpWait:      {name: "wait", pop: 1},
	OpNotify:    {name: "notify", pop: 1},
	OpNotifyAll: {name: "notifyall", pop: 1},
	OpSpawn:     {name: "spawn", pop: -1, push: 1, operand: "method", branch: true},
	OpJoin:      {name: "join", pop: 1, branch: true},
	OpYield:     {name: "yield"},
	OpAlive:     {name: "alive", pop: 1, push: 1},
	OpMarkDead:  {name: "markdead"},
	OpHalt:      {name: "halt"},
}

var nameToOp = func() map[string]Opcode {
	m := make(map[string]Opcode, len(opTable))
	for op, info := range opTable {
		m[info.name] = op
	}
	return m
}()

// String returns the assembler mnemonic for op.
func (op Opcode) String() string {
	if info, ok := opTable[op]; ok {
		return info.name
	}
	return "op?"
}

// IsBranch reports whether executing op increments the branch counter
// (br_cnt): branches, jumps, calls and returns, as in §4.2.
func (op Opcode) IsBranch() bool { return opTable[op].branch }

// OpcodeByName returns the opcode for an assembler mnemonic.
func OpcodeByName(name string) (Opcode, bool) {
	op, ok := nameToOp[name]
	return op, ok
}

// Instr is a single FTVM instruction. A and B are operands whose meaning
// depends on Op (pool index, local slot, jump target, method index, …).
type Instr struct {
	Op Opcode
	A  int32
	B  int32
}

// ArrElemKind values for OpNewArr's A operand.
const (
	ElemInt   = 0
	ElemFloat = 1
	ElemRef   = 2
)
