package minilang

// Type is a minilang type.
type Type struct {
	Kind  TypeKind
	Class string // KindClass: class name
	Elem  *Type  // KindArray: element type
}

// TypeKind enumerates minilang types.
type TypeKind uint8

// Type kinds.
const (
	TypeVoid TypeKind = iota
	TypeInt
	TypeFloat
	TypeStr
	TypeThread
	TypeClass
	TypeArray
	TypeNull // the type of the null literal (assignable to any ref type)
)

var (
	tVoid   = &Type{Kind: TypeVoid}
	tInt    = &Type{Kind: TypeInt}
	tFloat  = &Type{Kind: TypeFloat}
	tStr    = &Type{Kind: TypeStr}
	tThread = &Type{Kind: TypeThread}
	tNull   = &Type{Kind: TypeNull}
)

func (t *Type) String() string {
	switch t.Kind {
	case TypeVoid:
		return "void"
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeStr:
		return "str"
	case TypeThread:
		return "thread"
	case TypeClass:
		return t.Class
	case TypeArray:
		return "[]" + t.Elem.String()
	case TypeNull:
		return "null"
	default:
		return "?"
	}
}

// isRef reports whether values of t live on the heap.
func (t *Type) isRef() bool {
	switch t.Kind {
	case TypeStr, TypeThread, TypeClass, TypeArray, TypeNull:
		return true
	default:
		return false
	}
}

// equal reports structural type equality.
func (t *Type) equal(o *Type) bool {
	if t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case TypeClass:
		return t.Class == o.Class
	case TypeArray:
		return t.Elem.equal(o.Elem)
	default:
		return true
	}
}

// assignable reports whether a value of type src can be assigned to dst.
func assignable(dst, src *Type) bool {
	if src.Kind == TypeNull && dst.isRef() {
		return true
	}
	return dst.equal(src)
}

// Declarations.

type classDecl struct {
	name   string
	fields []param
	line   int
}

type param struct {
	name string
	typ  *Type
}

type funcDecl struct {
	name   string
	params []param
	ret    *Type
	body   []stmt
	line   int
}

type globalDecl struct {
	name string
	typ  *Type
	init expr // may be nil
	line int
}

type program struct {
	classes []*classDecl
	funcs   []*funcDecl
	globals []*globalDecl
}

// Statements.

type stmt interface{ stmtLine() int }

type varStmt struct {
	name string
	typ  *Type // nil means infer from init
	init expr  // may be nil when typ != nil
	line int
}

type assignStmt struct {
	target expr // identExpr, fieldExpr or indexExpr
	value  expr
	line   int
}

type exprStmt struct {
	e    expr
	line int
}

type ifStmt struct {
	cond      expr
	then, alt []stmt
	line      int
}

type whileStmt struct {
	cond expr
	body []stmt
	line int
}

type forStmt struct {
	init stmt // may be nil
	cond expr // may be nil
	post stmt // may be nil
	body []stmt
	line int
}

type returnStmt struct {
	value expr // may be nil
	line  int
}

type breakStmt struct{ line int }
type continueStmt struct{ line int }

type lockStmt struct {
	obj  expr
	body []stmt
	line int
}

type blockStmt struct {
	body []stmt
	line int
}

type haltStmt struct{ line int }
type yieldStmt struct{ line int }

func (s *varStmt) stmtLine() int      { return s.line }
func (s *assignStmt) stmtLine() int   { return s.line }
func (s *exprStmt) stmtLine() int     { return s.line }
func (s *ifStmt) stmtLine() int       { return s.line }
func (s *whileStmt) stmtLine() int    { return s.line }
func (s *forStmt) stmtLine() int      { return s.line }
func (s *returnStmt) stmtLine() int   { return s.line }
func (s *breakStmt) stmtLine() int    { return s.line }
func (s *continueStmt) stmtLine() int { return s.line }
func (s *lockStmt) stmtLine() int     { return s.line }
func (s *blockStmt) stmtLine() int    { return s.line }
func (s *haltStmt) stmtLine() int     { return s.line }
func (s *yieldStmt) stmtLine() int    { return s.line }

// Expressions.

type expr interface{ exprLine() int }

type intLit struct {
	v    int64
	line int
}

type floatLit struct {
	v    float64
	line int
}

type strLit struct {
	v    string
	line int
}

type nullLit struct{ line int }

type identExpr struct {
	name string
	line int
}

type unaryExpr struct {
	op   string // "-", "!"
	x    expr
	line int
}

type binExpr struct {
	op   string
	x, y expr
	line int
}

type callExpr struct {
	name string
	args []expr
	line int
}

type fieldExpr struct {
	x    expr
	name string
	line int
}

type indexExpr struct {
	x, idx expr
	line   int
}

type newExpr struct {
	typ  *Type // class instance or array (with length)
	size expr  // array length, nil for class
	line int
}

type spawnExpr struct {
	name string
	args []expr
	line int
}

func (e *intLit) exprLine() int    { return e.line }
func (e *floatLit) exprLine() int  { return e.line }
func (e *strLit) exprLine() int    { return e.line }
func (e *nullLit) exprLine() int   { return e.line }
func (e *identExpr) exprLine() int { return e.line }
func (e *unaryExpr) exprLine() int { return e.line }
func (e *binExpr) exprLine() int   { return e.line }
func (e *callExpr) exprLine() int  { return e.line }
func (e *fieldExpr) exprLine() int { return e.line }
func (e *indexExpr) exprLine() int { return e.line }
func (e *newExpr) exprLine() int   { return e.line }
func (e *spawnExpr) exprLine() int { return e.line }
