// Package minilang implements a small imperative language — lexer,
// recursive-descent parser, type checker and code generator — targeting FTVM
// bytecode. It is the substrate used to author the SPEC JVM98-analog
// benchmark programs and the examples: C-like syntax with int/float/str
// scalars, arrays, record classes, functions, monitors (lock blocks,
// wait/notify), threads (spawn/join) and the FTVM native builtins.
package minilang

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokFloat
	tokStr
	tokPunct // operators and punctuation
	tokKeyword
)

var keywords = map[string]bool{
	"func": true, "var": true, "class": true, "if": true, "else": true,
	"while": true, "for": true, "return": true, "break": true, "continue": true,
	"lock": true, "spawn": true, "new": true, "null": true, "true": true,
	"false": true, "int": true, "float": true, "str": true, "thread": true,
	"halt": true, "yield": true,
}

type token struct {
	kind tokKind
	text string
	i    int64
	f    float64
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokStr:
		return fmt.Sprintf("string %q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// SyntaxError reports a lexing or parsing failure with its source line.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("minilang: line %d: %s", e.Line, e.Msg)
}

func errAt(line int, format string, args ...any) error {
	return &SyntaxError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// lex tokenises src.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			i += 2
			for i+1 < n && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
				}
				i++
			}
			if i+1 >= n {
				return nil, errAt(line, "unterminated block comment")
			}
			i += 2
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < n && (isIdentChar(src[j])) {
				j++
			}
			word := src[i:j]
			k := tokIdent
			if keywords[word] {
				k = tokKeyword
			}
			toks = append(toks, token{kind: k, text: word, line: line})
			i = j
		case c >= '0' && c <= '9':
			j := i
			isFloat := false
			for j < n && (src[j] >= '0' && src[j] <= '9') {
				j++
			}
			if j < n && src[j] == '.' && j+1 < n && src[j+1] >= '0' && src[j+1] <= '9' {
				isFloat = true
				j++
				for j < n && (src[j] >= '0' && src[j] <= '9') {
					j++
				}
			}
			if j < n && (src[j] == 'e' || src[j] == 'E') {
				k := j + 1
				if k < n && (src[k] == '+' || src[k] == '-') {
					k++
				}
				if k < n && src[k] >= '0' && src[k] <= '9' {
					isFloat = true
					for k < n && src[k] >= '0' && src[k] <= '9' {
						k++
					}
					j = k
				}
			}
			text := src[i:j]
			if isFloat {
				var f float64
				if _, err := fmt.Sscanf(text, "%g", &f); err != nil {
					return nil, errAt(line, "bad float literal %q", text)
				}
				toks = append(toks, token{kind: tokFloat, text: text, f: f, line: line})
			} else {
				var v int64
				if _, err := fmt.Sscanf(text, "%d", &v); err != nil {
					return nil, errAt(line, "bad int literal %q", text)
				}
				toks = append(toks, token{kind: tokInt, text: text, i: v, line: line})
			}
			i = j
		case c == '"':
			var sb strings.Builder
			j := i + 1
			for j < n && src[j] != '"' {
				if src[j] == '\\' && j+1 < n {
					j++
					switch src[j] {
					case 'n':
						sb.WriteByte('\n')
					case 't':
						sb.WriteByte('\t')
					case '"':
						sb.WriteByte('"')
					case '\\':
						sb.WriteByte('\\')
					default:
						return nil, errAt(line, "bad escape \\%c", src[j])
					}
				} else {
					if src[j] == '\n' {
						return nil, errAt(line, "newline in string literal")
					}
					sb.WriteByte(src[j])
				}
				j++
			}
			if j >= n {
				return nil, errAt(line, "unterminated string literal")
			}
			toks = append(toks, token{kind: tokStr, text: sb.String(), line: line})
			i = j + 1
		default:
			// Multi-char operators first.
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch two {
			case "==", "!=", "<=", ">=", "&&", "||", "<<", ">>":
				toks = append(toks, token{kind: tokPunct, text: two, line: line})
				i += 2
				continue
			}
			switch c {
			case '+', '-', '*', '/', '%', '<', '>', '=', '!', '&', '|', '^',
				'(', ')', '{', '}', '[', ']', ',', ';', '.', ':':
				toks = append(toks, token{kind: tokPunct, text: string(c), line: line})
				i++
			default:
				return nil, errAt(line, "unexpected character %q", string(c))
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line})
	return toks, nil
}

func isIdentChar(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}
