package minilang

import (
	"repro/internal/bytecode"
)

// genCall compiles a user function call or a builtin.
func (fc *fnCompiler) genCall(ex *callExpr) (*Type, error) {
	if gen, ok := builtins[ex.name]; ok {
		return gen(fc, ex)
	}
	fn, ok := fc.c.funcs[ex.name]
	if !ok {
		return nil, errAt(ex.line, "unknown function %s", ex.name)
	}
	if len(ex.args) != len(fn.decl.params) {
		return nil, errAt(ex.line, "%s: %d args, want %d", ex.name, len(ex.args), len(fn.decl.params))
	}
	for i, a := range ex.args {
		t, err := fc.genExpr(a)
		if err != nil {
			return nil, err
		}
		if !assignable(fn.decl.params[i].typ, t) {
			return nil, errAt(ex.line, "%s: arg %d is %s, want %s", ex.name, i+1, t, fn.decl.params[i].typ)
		}
	}
	fc.asm.Call(fn.idx)
	return fn.decl.ret, nil
}

// builtinGen compiles one builtin call (arguments NOT yet emitted).
type builtinGen func(fc *fnCompiler, ex *callExpr) (*Type, error)

// genArgs emits the arguments and checks them against want (nil entries
// accept any type); returns the actual types.
func (fc *fnCompiler) genArgs(ex *callExpr, want []*Type) ([]*Type, error) {
	if len(ex.args) != len(want) {
		return nil, errAt(ex.line, "%s: %d args, want %d", ex.name, len(ex.args), len(want))
	}
	types := make([]*Type, len(ex.args))
	for i, a := range ex.args {
		t, err := fc.genExpr(a)
		if err != nil {
			return nil, err
		}
		if want[i] != nil && !assignable(want[i], t) {
			return nil, errAt(ex.line, "%s: arg %d is %s, want %s", ex.name, i+1, t, want[i])
		}
		types[i] = t
	}
	return types, nil
}

// nativeBuiltin builds a builtin that lowers to a native-method call.
func nativeBuiltin(sig string, params []*Type, ret *Type) builtinGen {
	return func(fc *fnCompiler, ex *callExpr) (*Type, error) {
		if _, err := fc.genArgs(ex, params); err != nil {
			return nil, err
		}
		idx := fc.c.nativeMethod(sig, len(params), ret.Kind != TypeVoid)
		fc.asm.Call(idx)
		return ret, nil
	}
}

// opBuiltin builds a builtin that lowers to a single opcode.
func opBuiltin(op bytecode.Opcode, params []*Type, ret *Type) builtinGen {
	return func(fc *fnCompiler, ex *callExpr) (*Type, error) {
		if _, err := fc.genArgs(ex, params); err != nil {
			return nil, err
		}
		fc.asm.Emit(op)
		return ret, nil
	}
}

// monitorBuiltin builds wait/notify/notifyall (any heap object).
func monitorBuiltin(op bytecode.Opcode) builtinGen {
	return func(fc *fnCompiler, ex *callExpr) (*Type, error) {
		types, err := fc.genArgs(ex, []*Type{nil})
		if err != nil {
			return nil, err
		}
		if !types[0].isRef() || types[0].Kind == TypeNull {
			return nil, errAt(ex.line, "%s needs a heap object, got %s", ex.name, types[0])
		}
		fc.asm.Emit(op)
		return tVoid, nil
	}
}

// toStr emits the conversion of the value of type t (already on the stack)
// into a string.
func (fc *fnCompiler) toStr(t *Type, line int) error {
	switch t.Kind {
	case TypeStr:
		return nil
	case TypeInt:
		fc.asm.Emit(bytecode.OpI2S)
		return nil
	case TypeFloat:
		fc.asm.Emit(bytecode.OpF2S)
		return nil
	default:
		return errAt(line, "cannot convert %s to str", t)
	}
}

var builtins map[string]builtinGen

func init() {
	// Built in a function to allow self-reference-free construction; the
	// table is immutable after init (deterministic, no I/O).
	builtins = map[string]builtinGen{
		// Console and conversions.
		"print": func(fc *fnCompiler, ex *callExpr) (*Type, error) {
			types, err := fc.genArgs(ex, []*Type{nil})
			if err != nil {
				return nil, err
			}
			if err := fc.toStr(types[0], ex.line); err != nil {
				return nil, err
			}
			idx := fc.c.nativeMethod("io.print", 1, false)
			fc.asm.Call(idx)
			return tVoid, nil
		},
		"str": func(fc *fnCompiler, ex *callExpr) (*Type, error) {
			types, err := fc.genArgs(ex, []*Type{nil})
			if err != nil {
				return nil, err
			}
			if err := fc.toStr(types[0], ex.line); err != nil {
				return nil, err
			}
			return tStr, nil
		},
		"int": func(fc *fnCompiler, ex *callExpr) (*Type, error) {
			types, err := fc.genArgs(ex, []*Type{nil})
			if err != nil {
				return nil, err
			}
			switch types[0].Kind {
			case TypeInt:
			case TypeFloat:
				fc.asm.Emit(bytecode.OpF2I)
			case TypeStr:
				fc.asm.Emit(bytecode.OpS2I)
			default:
				return nil, errAt(ex.line, "cannot convert %s to int", types[0])
			}
			return tInt, nil
		},
		"float": func(fc *fnCompiler, ex *callExpr) (*Type, error) {
			types, err := fc.genArgs(ex, []*Type{nil})
			if err != nil {
				return nil, err
			}
			switch types[0].Kind {
			case TypeFloat:
			case TypeInt:
				fc.asm.Emit(bytecode.OpI2F)
			default:
				return nil, errAt(ex.line, "cannot convert %s to float", types[0])
			}
			return tFloat, nil
		},
		"itoa":   opBuiltin(bytecode.OpI2S, []*Type{tInt}, tStr),
		"ftoa":   opBuiltin(bytecode.OpF2S, []*Type{tFloat}, tStr),
		"atoi":   opBuiltin(bytecode.OpS2I, []*Type{tStr}, tInt),
		"chr":    opBuiltin(bytecode.OpChr, []*Type{tInt}, tStr),
		"hash":   opBuiltin(bytecode.OpHashStr, []*Type{tStr}, tInt),
		"substr": opBuiltin(bytecode.OpSSub, []*Type{tStr, tInt, tInt}, tStr),
		"charat": opBuiltin(bytecode.OpSIdx, []*Type{tStr, tInt}, tInt),
		"len": func(fc *fnCompiler, ex *callExpr) (*Type, error) {
			types, err := fc.genArgs(ex, []*Type{nil})
			if err != nil {
				return nil, err
			}
			switch types[0].Kind {
			case TypeStr:
				fc.asm.Emit(bytecode.OpSLen)
			case TypeArray:
				fc.asm.Emit(bytecode.OpALen)
			default:
				return nil, errAt(ex.line, "len needs a string or array, got %s", types[0])
			}
			return tInt, nil
		},

		// Threads and monitors.
		"join": func(fc *fnCompiler, ex *callExpr) (*Type, error) {
			if _, err := fc.genArgs(ex, []*Type{tThread}); err != nil {
				return nil, err
			}
			fc.asm.Emit(bytecode.OpJoin)
			return tVoid, nil
		},
		"wait":      monitorBuiltin(bytecode.OpWait),
		"notify":    monitorBuiltin(bytecode.OpNotify),
		"notifyall": monitorBuiltin(bytecode.OpNotifyAll),
		"locktouch": func(fc *fnCompiler, ex *callExpr) (*Type, error) {
			types, err := fc.genArgs(ex, []*Type{nil})
			if err != nil {
				return nil, err
			}
			if !types[0].isRef() || types[0].Kind == TypeNull {
				return nil, errAt(ex.line, "locktouch needs a heap object, got %s", types[0])
			}
			idx := fc.c.nativeMethod("sys.locktouch", 1, false)
			fc.asm.Call(idx)
			return tVoid, nil
		},

		// Environment natives.
		"clock":    nativeBuiltin("sys.clock", nil, tInt),
		"rand":     nativeBuiltin("sys.rand", nil, tInt),
		"gc":       nativeBuiltin("sys.gc", nil, tVoid),
		"threadid": nativeBuiltin("sys.threadid", nil, tStr),
		"send":     nativeBuiltin("chan.send", []*Type{tStr}, tVoid),
		"recv":     nativeBuiltin("chan.recv", nil, tStr),
		"chanlen":  nativeBuiltin("chan.len", nil, tInt),
		"fopen":    nativeBuiltin("fs.open", []*Type{tStr, tInt}, tInt),
		"fwrite":   nativeBuiltin("fs.write", []*Type{tInt, tStr}, tInt),
		"fread":    nativeBuiltin("fs.read", []*Type{tInt, tInt}, tStr),
		"fseek":    nativeBuiltin("fs.seek", []*Type{tInt, tInt, tInt}, tInt),
		"ftell":    nativeBuiltin("fs.tell", []*Type{tInt}, tInt),
		"fclose":   nativeBuiltin("fs.close", []*Type{tInt}, tVoid),
		"fsize":    nativeBuiltin("fs.size", []*Type{tStr}, tInt),
		"fexists":  nativeBuiltin("fs.exists", []*Type{tStr}, tInt),
		"fdelete":  nativeBuiltin("fs.delete", []*Type{tStr}, tInt),

		// Math natives.
		"sqrt":  nativeBuiltin("math.sqrt", []*Type{tFloat}, tFloat),
		"sin":   nativeBuiltin("math.sin", []*Type{tFloat}, tFloat),
		"cos":   nativeBuiltin("math.cos", []*Type{tFloat}, tFloat),
		"exp":   nativeBuiltin("math.exp", []*Type{tFloat}, tFloat),
		"log":   nativeBuiltin("math.log", []*Type{tFloat}, tFloat),
		"floor": nativeBuiltin("math.floor", []*Type{tFloat}, tFloat),
		"fabs":  nativeBuiltin("math.abs", []*Type{tFloat}, tFloat),
		"pow":   nativeBuiltin("math.pow", []*Type{tFloat, tFloat}, tFloat),
	}
}
