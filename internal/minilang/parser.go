package minilang

import "fmt"

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

func parse(src string) (*program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.program()
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) is(text string) bool {
	t := p.cur()
	return (t.kind == tokPunct || t.kind == tokKeyword) && t.text == text
}

func (p *parser) accept(text string) bool {
	if p.is(text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) (token, error) {
	if p.is(text) {
		return p.next(), nil
	}
	return token{}, errAt(p.cur().line, "expected %q, found %s", text, p.cur())
}

func (p *parser) ident() (token, error) {
	if p.cur().kind == tokIdent {
		return p.next(), nil
	}
	return token{}, errAt(p.cur().line, "expected identifier, found %s", p.cur())
}

func (p *parser) program() (*program, error) {
	prog := &program{}
	for p.cur().kind != tokEOF {
		switch {
		case p.is("class"):
			c, err := p.classDecl()
			if err != nil {
				return nil, err
			}
			prog.classes = append(prog.classes, c)
		case p.is("func"):
			f, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			prog.funcs = append(prog.funcs, f)
		case p.is("var"):
			g, err := p.globalDecl()
			if err != nil {
				return nil, err
			}
			prog.globals = append(prog.globals, g)
		default:
			return nil, errAt(p.cur().line, "expected class, func or var, found %s", p.cur())
		}
	}
	return prog, nil
}

// typeName parses a type: int | float | str | thread | []T | ClassName.
func (p *parser) typeName() (*Type, error) {
	t := p.cur()
	switch {
	case p.accept("int"):
		return tInt, nil
	case p.accept("float"):
		return tFloat, nil
	case p.accept("str"):
		return tStr, nil
	case p.accept("thread"):
		return tThread, nil
	case p.accept("["):
		if _, err := p.expect("]"); err != nil {
			return nil, err
		}
		elem, err := p.typeName()
		if err != nil {
			return nil, err
		}
		return &Type{Kind: TypeArray, Elem: elem}, nil
	case t.kind == tokIdent:
		p.next()
		return &Type{Kind: TypeClass, Class: t.text}, nil
	default:
		return nil, errAt(t.line, "expected a type, found %s", t)
	}
}

func (p *parser) classDecl() (*classDecl, error) {
	kw := p.next() // class
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("{"); err != nil {
		return nil, err
	}
	c := &classDecl{name: name.text, line: kw.line}
	for !p.accept("}") {
		fname, err := p.ident()
		if err != nil {
			return nil, err
		}
		ftyp, err := p.typeName()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		c.fields = append(c.fields, param{name: fname.text, typ: ftyp})
	}
	return c, nil
}

func (p *parser) globalDecl() (*globalDecl, error) {
	kw := p.next() // var
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	typ, err := p.typeName()
	if err != nil {
		return nil, err
	}
	g := &globalDecl{name: name.text, typ: typ, line: kw.line}
	if p.accept("=") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		g.init = e
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return g, nil
}

func (p *parser) funcDecl() (*funcDecl, error) {
	kw := p.next() // func
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	f := &funcDecl{name: name.text, ret: tVoid, line: kw.line}
	for !p.accept(")") {
		if len(f.params) > 0 {
			if _, err := p.expect(","); err != nil {
				return nil, err
			}
		}
		pname, err := p.ident()
		if err != nil {
			return nil, err
		}
		ptyp, err := p.typeName()
		if err != nil {
			return nil, err
		}
		f.params = append(f.params, param{name: pname.text, typ: ptyp})
	}
	if !p.is("{") {
		ret, err := p.typeName()
		if err != nil {
			return nil, err
		}
		f.ret = ret
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	f.body = body
	return f, nil
}

func (p *parser) block() ([]stmt, error) {
	if _, err := p.expect("{"); err != nil {
		return nil, err
	}
	var out []stmt
	for !p.accept("}") {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (p *parser) stmt() (stmt, error) {
	t := p.cur()
	switch {
	case p.is("var"):
		s, err := p.varStmt()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(";")
		return s, err
	case p.is("if"):
		return p.ifStmt()
	case p.is("while"):
		p.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &whileStmt{cond: cond, body: body, line: t.line}, nil
	case p.is("for"):
		return p.forStmt()
	case p.is("return"):
		p.next()
		s := &returnStmt{line: t.line}
		if !p.is(";") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.value = e
		}
		_, err := p.expect(";")
		return s, err
	case p.is("break"):
		p.next()
		_, err := p.expect(";")
		return &breakStmt{line: t.line}, err
	case p.is("continue"):
		p.next()
		_, err := p.expect(";")
		return &continueStmt{line: t.line}, err
	case p.is("halt"):
		p.next()
		_, err := p.expect(";")
		return &haltStmt{line: t.line}, err
	case p.is("yield"):
		p.next()
		if p.accept("(") {
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
		}
		_, err := p.expect(";")
		return &yieldStmt{line: t.line}, err
	case p.is("lock"):
		p.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		obj, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &lockStmt{obj: obj, body: body, line: t.line}, nil
	case p.is("{"):
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &blockStmt{body: body, line: t.line}, nil
	default:
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(";")
		return s, err
	}
}

// simpleStmt parses an assignment or expression statement (no semicolon).
func (p *parser) simpleStmt() (stmt, error) {
	t := p.cur()
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.accept("=") {
		switch e.(type) {
		case *identExpr, *fieldExpr, *indexExpr:
		default:
			return nil, errAt(t.line, "invalid assignment target")
		}
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &assignStmt{target: e, value: v, line: t.line}, nil
	}
	return &exprStmt{e: e, line: t.line}, nil
}

func (p *parser) varStmt() (*varStmt, error) {
	kw := p.next() // var
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	s := &varStmt{name: name.text, line: kw.line}
	if !p.is("=") {
		typ, err := p.typeName()
		if err != nil {
			return nil, err
		}
		s.typ = typ
	}
	if p.accept("=") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.init = e
	}
	if s.typ == nil && s.init == nil {
		return nil, errAt(kw.line, "var %s needs a type or an initializer", s.name)
	}
	return s, nil
}

func (p *parser) ifStmt() (stmt, error) {
	kw := p.next() // if
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	s := &ifStmt{cond: cond, then: then, line: kw.line}
	if p.accept("else") {
		if p.is("if") {
			alt, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			s.alt = []stmt{alt}
		} else {
			alt, err := p.block()
			if err != nil {
				return nil, err
			}
			s.alt = alt
		}
	}
	return s, nil
}

func (p *parser) forStmt() (stmt, error) {
	kw := p.next() // for
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	s := &forStmt{line: kw.line}
	if !p.is(";") {
		var err error
		if p.is("var") {
			s.init, err = p.varStmt()
		} else {
			s.init, err = p.simpleStmt()
		}
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	if !p.is(";") {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.cond = cond
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	if !p.is(")") {
		post, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		s.post = post
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	s.body = body
	return s, nil
}

// Expression grammar (precedence climbing):
//
//	or:   and ("||" and)*
//	and:  cmp ("&&" cmp)*
//	cmp:  bitor (("=="|"!="|"<"|"<="|">"|">=") bitor)?
//	bitor: bitxor ("|" bitxor)*      bitxor: bitand ("^" bitand)*
//	bitand: shift ("&" shift)*      shift: add (("<<"|">>") add)*
//	add:  mul (("+"|"-") mul)*       mul: unary (("*"|"/"|"%") unary)*
//	unary: ("-"|"!") unary | postfix
//	postfix: primary ("." ident | "[" expr "]")*
func (p *parser) expr() (expr, error) { return p.orExpr() }

func (p *parser) binLevel(ops []string, sub func() (expr, error)) (expr, error) {
	x, err := sub()
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range ops {
			if p.is(op) {
				t := p.next()
				y, err := sub()
				if err != nil {
					return nil, err
				}
				x = &binExpr{op: op, x: x, y: y, line: t.line}
				matched = true
				break
			}
		}
		if !matched {
			return x, nil
		}
	}
}

func (p *parser) orExpr() (expr, error) {
	return p.binLevel([]string{"||"}, p.andExpr)
}

func (p *parser) andExpr() (expr, error) {
	return p.binLevel([]string{"&&"}, p.cmpExpr)
}

func (p *parser) cmpExpr() (expr, error) {
	x, err := p.bitOrExpr()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"==", "!=", "<=", ">=", "<", ">"} {
		if p.is(op) {
			t := p.next()
			y, err := p.bitOrExpr()
			if err != nil {
				return nil, err
			}
			return &binExpr{op: op, x: x, y: y, line: t.line}, nil
		}
	}
	return x, nil
}

func (p *parser) bitOrExpr() (expr, error) {
	return p.binLevel([]string{"|"}, p.bitXorExpr)
}

func (p *parser) bitXorExpr() (expr, error) {
	return p.binLevel([]string{"^"}, p.bitAndExpr)
}

func (p *parser) bitAndExpr() (expr, error) {
	return p.binLevel([]string{"&"}, p.shiftExpr)
}

func (p *parser) shiftExpr() (expr, error) {
	return p.binLevel([]string{"<<", ">>"}, p.addExpr)
}

func (p *parser) addExpr() (expr, error) {
	return p.binLevel([]string{"+", "-"}, p.mulExpr)
}

func (p *parser) mulExpr() (expr, error) {
	return p.binLevel([]string{"*", "/", "%"}, p.unaryExprP)
}

func (p *parser) unaryExprP() (expr, error) {
	t := p.cur()
	if p.accept("-") {
		x, err := p.unaryExprP()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{op: "-", x: x, line: t.line}, nil
	}
	if p.accept("!") {
		x, err := p.unaryExprP()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{op: "!", x: x, line: t.line}, nil
	}
	return p.postfixExpr()
}

func (p *parser) postfixExpr() (expr, error) {
	x, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.is("."):
			t := p.next()
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			x = &fieldExpr{x: x, name: name.text, line: t.line}
		case p.is("["):
			t := p.next()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			x = &indexExpr{x: x, idx: idx, line: t.line}
		default:
			return x, nil
		}
	}
}

func (p *parser) primaryExpr() (expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokInt:
		p.next()
		return &intLit{v: t.i, line: t.line}, nil
	case t.kind == tokFloat:
		p.next()
		return &floatLit{v: t.f, line: t.line}, nil
	case t.kind == tokStr:
		p.next()
		return &strLit{v: t.text, line: t.line}, nil
	case p.accept("true"):
		return &intLit{v: 1, line: t.line}, nil
	case p.accept("false"):
		return &intLit{v: 0, line: t.line}, nil
	case p.accept("null"):
		return &nullLit{line: t.line}, nil
	case p.accept("("):
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	case p.is("new"):
		return p.newExpr()
	case p.is("spawn"):
		p.next()
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		args, err := p.callArgs()
		if err != nil {
			return nil, err
		}
		return &spawnExpr{name: name.text, args: args, line: t.line}, nil
	case t.kind == tokIdent:
		p.next()
		if p.is("(") {
			args, err := p.callArgs()
			if err != nil {
				return nil, err
			}
			return &callExpr{name: t.text, args: args, line: t.line}, nil
		}
		return &identExpr{name: t.text, line: t.line}, nil
	case t.kind == tokKeyword && (t.text == "int" || t.text == "float" || t.text == "str"):
		// Conversion calls: int(x), float(x), str(x).
		p.next()
		args, err := p.callArgs()
		if err != nil {
			return nil, err
		}
		return &callExpr{name: t.text, args: args, line: t.line}, nil
	default:
		return nil, errAt(t.line, "unexpected %s in expression", t)
	}
}

func (p *parser) callArgs() ([]expr, error) {
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	var args []expr
	for !p.accept(")") {
		if len(args) > 0 {
			if _, err := p.expect(","); err != nil {
				return nil, err
			}
		}
		a, err := p.expr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
	}
	return args, nil
}

// newExpr: "new" ClassName | "new" "[" expr "]" elemType
func (p *parser) newExpr() (expr, error) {
	kw := p.next() // new
	if p.accept("[") {
		size, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("]"); err != nil {
			return nil, err
		}
		elem, err := p.typeName()
		if err != nil {
			return nil, err
		}
		return &newExpr{typ: &Type{Kind: TypeArray, Elem: elem}, size: size, line: kw.line}, nil
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &newExpr{typ: &Type{Kind: TypeClass, Class: name.text}, line: kw.line}, nil
}

var _ = fmt.Sprintf
