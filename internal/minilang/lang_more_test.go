package minilang

import (
	"strings"
	"testing"
)

func TestScopingAndShadowing(t *testing.T) {
	got := run(t, `
var x int = 1;
func main() {
	print(x);          // global
	var x int = 2;     // local shadows global
	print(x);
	{
		var x int = 3; // block shadows local
		print(x);
	}
	print(x);          // back to the local
	if (true) {
		var y int = 9;
		print(y);
	}
	var y int = 10;    // legal: the if-block y is out of scope
	print(y);
}`)
	expectLines(t, got, "1", "2", "3", "2", "9", "10")
}

func TestForVariants(t *testing.T) {
	got := run(t, `
func main() {
	var n int = 0;
	for (;;) {
		n = n + 1;
		if (n >= 4) { break; }
	}
	print(n);
	var s int = 0;
	var i int = 0;
	for (; i < 5;) {
		s = s + i;
		i = i + 1;
	}
	print(s);
	for (var j int = 10; j > 0; j = j - 3) {
		s = s + 1;
	}
	print(s);
}`)
	expectLines(t, got, "4", "10", "14")
}

func TestNestedLocksAndContinue(t *testing.T) {
	got := run(t, `
class L { v int; }
var a L;
var b L;
func main() {
	a = new L;
	b = new L;
	var n int = 0;
	for (var i int = 0; i < 6; i = i + 1) {
		lock (a) {
			lock (b) {
				if (i % 2 == 0) { continue; }  // must release both
				n = n + 1;
			}
		}
	}
	lock (a) { lock (b) { print(n); } }   // both monitors free again
}`)
	expectLines(t, got, "3")
}

func TestGlobalArraysAndClassFields(t *testing.T) {
	got := run(t, `
class Node { val int; next Node; }
var table []Node;
var matrix [][]int;
func main() {
	table = new [3]Node;
	var head Node = null;
	for (var i int = 0; i < 3; i = i + 1) {
		var n Node = new Node;
		n.val = i * 10;
		n.next = head;
		head = n;
		table[i] = n;
	}
	var sum int = 0;
	var cur Node = head;
	while (cur != null) {
		sum = sum + cur.val;
		cur = cur.next;
	}
	print(sum);
	matrix = new [2][]int;
	matrix[0] = new [3]int;
	matrix[1] = new [3]int;
	matrix[1][2] = 42;
	print(matrix[1][2] + len(matrix) + len(matrix[0]));
}`)
	expectLines(t, got, "30", "47")
}

func TestCommentsAndEscapes(t *testing.T) {
	got := run(t, `
// line comment
/* block
   comment */
func main() {
	print("tab\there");
	print("quote\"inside");
	print("back\\slash"); // trailing comment
}`)
	expectLines(t, got, "tab\there", "quote\"inside", "back\\slash")
}

func TestRecursionDeep(t *testing.T) {
	got := run(t, `
func sum(n int) int {
	if (n == 0) { return 0; }
	return n + sum(n - 1);
}
func main() { print(sum(500)); }`)
	expectLines(t, got, "125250")
}

func TestMutualRecursion(t *testing.T) {
	got := run(t, `
func isEven(n int) int {
	if (n == 0) { return 1; }
	return isOdd(n - 1);
}
func isOdd(n int) int {
	if (n == 0) { return 0; }
	return isEven(n - 1);
}
func main() {
	print(isEven(10));
	print(isOdd(7));
}`)
	expectLines(t, got, "1", "1")
}

func TestStrBuildingLoop(t *testing.T) {
	got := run(t, `
func main() {
	var s str = "";
	for (var i int = 0; i < 5; i = i + 1) {
		s = s + itoa(i) + ",";
	}
	print(s);
	print(len(s));
	// charat/substr round the string
	var out str = "";
	for (var i int = len(s) - 1; i >= 0; i = i - 1) {
		out = out + chr(charat(s, i));
	}
	print(out);
}`)
	expectLines(t, got, "0,1,2,3,4,", "10", ",4,3,2,1,0")
}

func TestThreadFanOut(t *testing.T) {
	got := run(t, `
class Sum { v int; }
var total Sum;
func worker(n int) {
	lock (total) { total.v = total.v + n; }
}
func main() {
	total = new Sum;
	var ts []thread = new [8]thread;
	for (var i int = 0; i < 8; i = i + 1) {
		ts[i] = spawn worker(i + 1);
	}
	for (var i int = 0; i < 8; i = i + 1) {
		join(ts[i]);
	}
	print(total.v);
}`)
	expectLines(t, got, "36")
}

func TestSyntaxErrorsHaveLines(t *testing.T) {
	cases := []string{
		"func main() { var x int = ; }",
		"func main() { if true { } }", // missing parens
		"func main() { lock x { } }",
		"class C { x }",                // missing type
		"func main() { y = 1 }",        // missing semicolon
		"func main() { \"unterminated", // lexer error
	}
	for i, src := range cases {
		_, err := Compile("bad", src)
		if err == nil {
			t.Fatalf("case %d compiled", i)
		}
		if !strings.Contains(err.Error(), "line") {
			t.Fatalf("case %d error lacks a line number: %v", i, err)
		}
	}
}

func TestYieldStatement(t *testing.T) {
	got := run(t, `
class Flag { done int; }
var f Flag;
func setter() {
	f.done = 1;
}
func main() {
	f = new Flag;
	var t thread = spawn setter();
	while (f.done == 0) {
		yield;
	}
	join(t);
	print("saw flag");
}`)
	expectLines(t, got, "saw flag")
}

func TestHaltStopsProgram(t *testing.T) {
	got := run(t, `
func main() {
	print("before");
	halt;
	print("after");
}`)
	expectLines(t, got, "before")
}
