package minilang

import (
	"strings"
	"testing"

	"repro/internal/env"
	"repro/internal/vm"
)

// run compiles and executes src, returning the console lines.
func run(t *testing.T, src string) []string {
	t.Helper()
	prog, err := Compile("test", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	e := env.New(3)
	v, err := vm.New(vm.Config{Program: prog, Env: e, MaxInstructions: 100_000_000})
	if err != nil {
		t.Fatalf("vm: %v", err)
	}
	if err := v.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return e.Console().Lines()
}

func expectLines(t *testing.T, got []string, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("console = %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("line %d = %q, want %q (all: %q)", i, got[i], want[i], got)
		}
	}
}

func TestHelloArithmetic(t *testing.T) {
	got := run(t, `
func main() {
	var x int = 6;
	var y int = 7;
	print("answer " + itoa(x*y));
}`)
	expectLines(t, got, "answer 42")
}

func TestControlFlow(t *testing.T) {
	got := run(t, `
func main() {
	var sum int = 0;
	for (var i int = 0; i < 10; i = i + 1) {
		if (i % 2 == 0) { continue; }
		if (i > 7) { break; }
		sum = sum + i;
	}
	var j int = 0;
	while (true) {
		j = j + 1;
		if (j >= 3) { break; }
	}
	print(sum);
	print(j);
}`)
	expectLines(t, got, "16", "3") // 1+3+5+7
}

func TestFunctionsAndRecursion(t *testing.T) {
	got := run(t, `
func fib(n int) int {
	if (n < 2) { return n; }
	return fib(n-1) + fib(n-2);
}
func main() { print(fib(15)); }`)
	expectLines(t, got, "610")
}

func TestFloatsAndMath(t *testing.T) {
	got := run(t, `
func main() {
	var r float = sqrt(2.0);
	var ok int = 0;
	if (r > 1.41421 && r < 1.41422) { ok = 1; }
	print(ok);
	print(int(floor(3.9)));
	print(pow(2.0, 10.0));
}`)
	expectLines(t, got, "1", "3", "1024")
}

func TestStrings(t *testing.T) {
	got := run(t, `
func main() {
	var s str = "hello" + " " + "world";
	print(len(s));
	print(substr(s, 0, 5));
	print(chr(charat(s, 6)));
	if ("abc" < "abd") { print("lt"); }
	if ("abc" == "abc") { print("eq"); }
	print(atoi("123") + 1);
}`)
	expectLines(t, got, "11", "hello", "w", "lt", "eq", "124")
}

func TestClassesAndArrays(t *testing.T) {
	got := run(t, `
class Point { x float; y float; next Point; }
func main() {
	var p Point = new Point;
	p.x = 3.0;
	p.y = 4.0;
	print(sqrt(p.x*p.x + p.y*p.y));
	var arr []int = new [5]int;
	for (var i int = 0; i < len(arr); i = i + 1) { arr[i] = i * i; }
	print(arr[4]);
	var pts [] Point = new [2]Point;
	pts[0] = p;
	if (pts[1] == null) { print("null slot"); }
	p.next = new Point;
	p.next.x = 9.0;
	print(p.next.x);
}`)
	expectLines(t, got, "5", "16", "null slot", "9")
}

func TestGlobalsAndInit(t *testing.T) {
	got := run(t, `
var counter int = 100;
var name str = "ftvm";
func bump() { counter = counter + 1; }
func main() {
	bump();
	bump();
	print(name + ":" + itoa(counter));
}`)
	expectLines(t, got, "ftvm:102")
}

func TestThreadsMonitors(t *testing.T) {
	got := run(t, `
class Counter { n int; }
var c Counter;
func worker(times int) {
	for (var i int = 0; i < times; i = i + 1) {
		lock (c) { c.n = c.n + 1; }
	}
}
func main() {
	c = new Counter;
	var t1 thread = spawn worker(500);
	var t2 thread = spawn worker(500);
	join(t1);
	join(t2);
	print(c.n);
}`)
	expectLines(t, got, "1000")
}

func TestWaitNotifyProducerConsumer(t *testing.T) {
	got := run(t, `
class Box { full int; value int; }
var box Box;
func producer() {
	for (var i int = 1; i <= 5; i = i + 1) {
		lock (box) {
			while (box.full == 1) { wait(box); }
			box.value = i * 10;
			box.full = 1;
			notifyall(box);
		}
	}
}
func main() {
	box = new Box;
	var p thread = spawn producer();
	var total int = 0;
	for (var i int = 0; i < 5; i = i + 1) {
		lock (box) {
			while (box.full == 0) { wait(box); }
			total = total + box.value;
			box.full = 0;
			notifyall(box);
		}
	}
	join(p);
	print(total);
}`)
	expectLines(t, got, "150") // 10+20+30+40+50
}

func TestShortCircuit(t *testing.T) {
	got := run(t, `
var calls int = 0;
func sideEffect() int { calls = calls + 1; return 1; }
func main() {
	if (false && sideEffect() == 1) { print("no"); }
	if (true || sideEffect() == 1) { print("yes"); }
	print(calls);
	var a int = 3;
	if (!(a == 4)) { print("neq"); }
}`)
	expectLines(t, got, "yes", "0", "neq")
}

func TestFileIO(t *testing.T) {
	prog, err := Compile("test", `
func main() {
	var fd int = fopen("data.txt", 1);
	fwrite(fd, "hello ");
	fwrite(fd, "file");
	fseek(fd, 0, 0);
	print(fread(fd, 5));
	print(ftell(fd));
	fclose(fd);
	print(fsize("data.txt"));
	print(fexists("nope"));
}`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	e := env.New(3)
	v, err := vm.New(vm.Config{Program: prog, Env: e})
	if err != nil {
		t.Fatalf("vm: %v", err)
	}
	if err := v.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	expectLines(t, e.Console().Lines(), "hello", "5", "10", "0")
	data, err := e.FileContents("data.txt")
	if err != nil || string(data) != "hello file" {
		t.Fatalf("file = %q (%v), want 'hello file'", data, err)
	}
}

func TestBreakInsideLockReleasesMonitor(t *testing.T) {
	got := run(t, `
class L { d int; }
var l L;
func main() {
	l = new L;
	for (var i int = 0; i < 3; i = i + 1) {
		lock (l) {
			if (i == 1) { break; }
		}
	}
	lock (l) { print("reacquired"); }
}`)
	expectLines(t, got, "reacquired")
}

func TestReturnInsideLockReleasesMonitor(t *testing.T) {
	got := run(t, `
class L { d int; }
var l L;
func f() int {
	lock (l) { return 7; }
}
func main() {
	l = new L;
	print(f());
	lock (l) { print("free"); }
}`)
	expectLines(t, got, "7", "free")
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"no main", `func f() {}`, "no main"},
		{"unknown var", `func main() { x = 1; }`, "unknown variable"},
		{"type mismatch", `func main() { var x int = "s"; }`, "cannot assign"},
		{"bad cond", `func main() { if (1.5) {} }`, "condition must be int"},
		{"unknown func", `func main() { nope(); }`, "unknown function"},
		{"unknown class", `func main() { var p Missing = null; }`, "unknown class"},
		{"dup func", `func f() {} func f() {} func main() {}`, "duplicate function"},
		{"builtin shadow", `func print(s str) {} func main() {}`, "shadows a builtin"},
		{"break outside", `func main() { break; }`, "break outside"},
		{"arity", `func f(a int) {} func main() { f(); }`, "1"},
		{"float int mix", `func main() { var x float = 1.0 + 1; }`, "invalid operands"},
		{"assign to call", `func main() { clock() = 3; }`, "assignment target"},
		{"spawn value fn", `func f() int { return 1; } func main() { spawn f(); }`, "must not return"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile("bad", tc.src)
			if err == nil {
				t.Fatalf("compile succeeded, want error containing %q", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not contain %q", err, tc.wantSub)
			}
		})
	}
}

func TestNestedIfElseChain(t *testing.T) {
	got := run(t, `
func classify(n int) str {
	if (n < 0) { return "neg"; }
	else if (n == 0) { return "zero"; }
	else if (n < 10) { return "small"; }
	else { return "big"; }
}
func main() {
	print(classify(0-5));
	print(classify(0));
	print(classify(3));
	print(classify(30));
}`)
	expectLines(t, got, "neg", "zero", "small", "big")
}

func TestBitOps(t *testing.T) {
	got := run(t, `
func main() {
	print(5 & 3);
	print(5 | 3);
	print(5 ^ 3);
	print(1 << 10);
	print(1024 >> 3);
}`)
	expectLines(t, got, "1", "7", "6", "1024", "128")
}

func TestHashDeterministic(t *testing.T) {
	a := run(t, `func main() { print(hash("ftvm")); }`)
	b := run(t, `func main() { print(hash("ftvm")); }`)
	if a[0] != b[0] {
		t.Fatalf("hash not deterministic: %s vs %s", a[0], b[0])
	}
}
