package minilang

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/env"
	fuzzrand "repro/internal/fuzzgen/rand"
	"repro/internal/vm"
)

// Differential fuzz: generate random integer expressions, evaluate them with
// a Go reference evaluator, compile them with minilang and execute on the
// VM, and require identical results. Exercises the expression grammar,
// precedence, short-circuit lowering and the branch-free comparison
// epilogues against an independent implementation.

type exprGen struct {
	rng  *fuzzrand.RNG
	vars []string
	vals map[string]int64
}

func (g *exprGen) intn(n int) int { return g.rng.Intn(n) }

// gen returns (source, value) for a random expression of bounded depth.
// Division and shifts are constrained to defined behaviour.
func (g *exprGen) gen(depth int) (string, int64) {
	if depth == 0 || g.intn(4) == 0 {
		switch g.intn(3) {
		case 0:
			v := int64(g.intn(2000) - 1000)
			if v < 0 {
				// Parenthesise negatives to dodge '--' style ambiguity.
				return fmt.Sprintf("(0 - %d)", -v), v
			}
			return fmt.Sprintf("%d", v), v
		case 1:
			name := g.vars[g.intn(len(g.vars))]
			return name, g.vals[name]
		default:
			v := int64(g.intn(2))
			if v == 1 {
				return "true", 1
			}
			return "false", 0
		}
	}
	op := g.intn(13)
	ls, lv := g.gen(depth - 1)
	rs, rv := g.gen(depth - 1)
	wrap := func(op string, v int64) (string, int64) {
		return "(" + ls + " " + op + " " + rs + ")", v
	}
	switch op {
	case 0:
		return wrap("+", lv+rv)
	case 1:
		return wrap("-", lv-rv)
	case 2:
		return wrap("*", lv*rv)
	case 3:
		if rv == 0 {
			return wrap("+", lv+rv)
		}
		return wrap("/", lv/rv)
	case 4:
		if rv == 0 {
			return wrap("-", lv-rv)
		}
		return wrap("%", lv%rv)
	case 5:
		return wrap("&", lv&rv)
	case 6:
		return wrap("|", lv|rv)
	case 7:
		return wrap("^", lv^rv)
	case 8:
		return wrap("==", boolInt(lv == rv))
	case 9:
		return wrap("!=", boolInt(lv != rv))
	case 10:
		return wrap("<", boolInt(lv < rv))
	case 11:
		return wrap(">=", boolInt(lv >= rv))
	default:
		// Short-circuit ops need 0/1 operands to mirror Go's bool result.
		lb, rb := boolInt(lv != 0), boolInt(rv != 0)
		lsb := "(" + ls + " != 0)"
		rsb := "(" + rs + " != 0)"
		if g.intn(2) == 0 {
			return "(" + lsb + " && " + rsb + ")", lb & rb
		}
		return "(" + lsb + " || " + rsb + ")", lb | rb
	}
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func TestExpressionFuzz(t *testing.T) {
	g := &exprGen{
		rng:  fuzzrand.New(0xfeedface),
		vars: []string{"a", "b", "c"},
		vals: map[string]int64{"a": 17, "b": -5, "c": 1000003},
	}
	const batch = 25
	for round := 0; round < 8; round++ {
		var exprs []string
		var wants []int64
		for i := 0; i < batch; i++ {
			src, want := g.gen(4)
			exprs = append(exprs, src)
			wants = append(wants, want)
		}
		var sb strings.Builder
		sb.WriteString("func main() {\n")
		sb.WriteString("var a int = 17; var b int = 0 - 5; var c int = 1000003;\n")
		for _, e := range exprs {
			fmt.Fprintf(&sb, "print(%s);\n", e)
		}
		sb.WriteString("}\n")
		prog, err := Compile("fuzz", sb.String())
		if err != nil {
			t.Fatalf("round %d: compile: %v\nsource:\n%s", round, err, sb.String())
		}
		e := env.New(1)
		v, err := vm.New(vm.Config{Program: prog, Env: e, MaxInstructions: 10_000_000})
		if err != nil {
			t.Fatal(err)
		}
		if err := v.Run(); err != nil {
			t.Fatalf("round %d: run: %v\nsource:\n%s", round, err, sb.String())
		}
		lines := e.Console().Lines()
		if len(lines) != batch {
			t.Fatalf("round %d: %d lines, want %d", round, len(lines), batch)
		}
		for i := range lines {
			if lines[i] != fmt.Sprintf("%d", wants[i]) {
				t.Fatalf("round %d expr %d:\n  %s\n  got %s, want %d",
					round, i, exprs[i], lines[i], wants[i])
			}
		}
	}
}

// TestShiftSemantics pins the shift behaviour (Go-like, masked to 63 bits).
func TestShiftSemantics(t *testing.T) {
	got := run(t, `
func main() {
	print(1 << 62);
	print((0 - 8) >> 1);
	print(5 << 64);
}`)
	// Shift counts are masked &63 (so 64 behaves like 0).
	expectLines(t, got, "4611686018427387904", "-4", "5")
}
