package minilang

import (
	"repro/internal/bytecode"
)

// genExpr compiles e, leaving its value on the stack, and returns its type.
func (fc *fnCompiler) genExpr(e expr) (*Type, error) {
	switch ex := e.(type) {
	case *intLit:
		fc.asm.Int(ex.v)
		return tInt, nil
	case *floatLit:
		fc.asm.Float(ex.v)
		return tFloat, nil
	case *strLit:
		fc.asm.Str(ex.v)
		return tStr, nil
	case *nullLit:
		fc.asm.Emit(bytecode.OpNull)
		return tNull, nil

	case *identExpr:
		if v, ok := fc.lookup(ex.name); ok {
			fc.asm.Load(v.slot)
			return v.typ, nil
		}
		if g, ok := fc.c.globals[ex.name]; ok {
			fc.asm.Emit(bytecode.OpGetS, g.idx)
			return g.decl.typ, nil
		}
		return nil, errAt(ex.line, "unknown variable %s", ex.name)

	case *unaryExpr:
		t, err := fc.genExpr(ex.x)
		if err != nil {
			return nil, err
		}
		switch ex.op {
		case "-":
			switch t.Kind {
			case TypeInt:
				fc.asm.Emit(bytecode.OpINeg)
				return tInt, nil
			case TypeFloat:
				fc.asm.Emit(bytecode.OpFNeg)
				return tFloat, nil
			}
			return nil, errAt(ex.line, "cannot negate %s", t)
		case "!":
			if t.Kind != TypeInt {
				return nil, errAt(ex.line, "! needs int, got %s", t)
			}
			// !x == (x compared to 0 is equal): cmp yields -1/0/1; 1-(c*c).
			fc.asm.Int(0)
			fc.asm.Emit(bytecode.OpICmp)
			fc.asm.Emit(bytecode.OpDup)
			fc.asm.Emit(bytecode.OpIMul)
			fc.asm.Int(1)
			fc.asm.Emit(bytecode.OpIXor)
			return tInt, nil
		}
		return nil, errAt(ex.line, "unknown unary %s", ex.op)

	case *binExpr:
		return fc.genBin(ex)

	case *fieldExpr:
		objT, err := fc.genExpr(ex.x)
		if err != nil {
			return nil, err
		}
		_, fi, ft, err := fc.fieldOf(objT, ex.name, ex.line)
		if err != nil {
			return nil, err
		}
		fc.asm.Emit(bytecode.OpGetF, int32(fi))
		return ft, nil

	case *indexExpr:
		arrT, err := fc.genExpr(ex.x)
		if err != nil {
			return nil, err
		}
		idxT, err := fc.genExpr(ex.idx)
		if err != nil {
			return nil, err
		}
		if idxT.Kind != TypeInt {
			return nil, errAt(ex.line, "index must be int, got %s", idxT)
		}
		switch arrT.Kind {
		case TypeArray:
			fc.asm.Emit(bytecode.OpALoad)
			return arrT.Elem, nil
		case TypeStr:
			fc.asm.Emit(bytecode.OpSIdx)
			return tInt, nil
		default:
			return nil, errAt(ex.line, "cannot index %s", arrT)
		}

	case *newExpr:
		if err := fc.c.checkType(ex.typ, ex.line); err != nil {
			return nil, err
		}
		if ex.typ.Kind == TypeClass {
			ci := fc.c.classes[ex.typ.Class]
			fc.asm.Emit(bytecode.OpNew, ci.idx)
			// The heap zero value of every field is null; scalar fields get
			// their typed zero so reads before first write are well-typed.
			for fi, f := range ci.decl.fields {
				switch f.typ.Kind {
				case TypeInt:
					fc.asm.Emit(bytecode.OpDup)
					fc.asm.Int(0)
					fc.asm.Emit(bytecode.OpPutF, int32(fi))
				case TypeFloat:
					fc.asm.Emit(bytecode.OpDup)
					fc.asm.Float(0)
					fc.asm.Emit(bytecode.OpPutF, int32(fi))
				}
			}
			return ex.typ, nil
		}
		sizeT, err := fc.genExpr(ex.size)
		if err != nil {
			return nil, err
		}
		if sizeT.Kind != TypeInt {
			return nil, errAt(ex.line, "array length must be int, got %s", sizeT)
		}
		var kind int32
		switch ex.typ.Elem.Kind {
		case TypeInt:
			kind = bytecode.ElemInt
		case TypeFloat:
			kind = bytecode.ElemFloat
		default:
			kind = bytecode.ElemRef
		}
		fc.asm.Emit(bytecode.OpNewArr, kind)
		return ex.typ, nil

	case *spawnExpr:
		fn, ok := fc.c.funcs[ex.name]
		if !ok {
			return nil, errAt(ex.line, "spawn of unknown function %s", ex.name)
		}
		if fn.decl.ret.Kind != TypeVoid {
			return nil, errAt(ex.line, "spawned function %s must not return a value", ex.name)
		}
		if len(ex.args) != len(fn.decl.params) {
			return nil, errAt(ex.line, "spawn %s: %d args, want %d", ex.name, len(ex.args), len(fn.decl.params))
		}
		for i, a := range ex.args {
			t, err := fc.genExpr(a)
			if err != nil {
				return nil, err
			}
			if !assignable(fn.decl.params[i].typ, t) {
				return nil, errAt(ex.line, "spawn %s: arg %d is %s, want %s", ex.name, i+1, t, fn.decl.params[i].typ)
			}
		}
		fc.asm.Emit(bytecode.OpSpawn, fn.idx, int32(len(ex.args)))
		return tThread, nil

	case *callExpr:
		return fc.genCall(ex)

	default:
		return nil, errAt(e.exprLine(), "unhandled expression %T", e)
	}
}

// genBin compiles a binary operation.
func (fc *fnCompiler) genBin(ex *binExpr) (*Type, error) {
	// Short-circuit logical operators.
	if ex.op == "&&" || ex.op == "||" {
		shortL, endL := fc.label("sc"), fc.label("scend")
		xt, err := fc.genExpr(ex.x)
		if err != nil {
			return nil, err
		}
		if xt.Kind != TypeInt {
			return nil, errAt(ex.line, "%s needs int operands, got %s", ex.op, xt)
		}
		if ex.op == "&&" {
			fc.asm.Jz(shortL)
		} else {
			fc.asm.Jnz(shortL)
		}
		yt, err := fc.genExpr(ex.y)
		if err != nil {
			return nil, err
		}
		if yt.Kind != TypeInt {
			return nil, errAt(ex.line, "%s needs int operands, got %s", ex.op, yt)
		}
		// Normalise the surviving operand to 0/1.
		fc.normBool()
		fc.asm.Jmp(endL)
		fc.asm.Label(shortL)
		if ex.op == "&&" {
			fc.asm.Int(0)
		} else {
			fc.asm.Int(1)
		}
		fc.asm.Label(endL)
		return tInt, nil
	}

	xt, err := fc.genExpr(ex.x)
	if err != nil {
		return nil, err
	}
	yt, err := fc.genExpr(ex.y)
	if err != nil {
		return nil, err
	}

	// Reference equality.
	if (ex.op == "==" || ex.op == "!=") && xt.isRef() && yt.isRef() &&
		(xt.Kind != TypeStr || yt.Kind != TypeStr) {
		if !assignable(xt, yt) && !assignable(yt, xt) {
			return nil, errAt(ex.line, "cannot compare %s with %s", xt, yt)
		}
		fc.asm.Emit(bytecode.OpRefEq)
		if ex.op == "!=" {
			fc.asm.Int(1)
			fc.asm.Emit(bytecode.OpIXor)
		}
		return tInt, nil
	}

	switch {
	case xt.Kind == TypeInt && yt.Kind == TypeInt:
		if op, ok := intOps[ex.op]; ok {
			fc.asm.Emit(op)
			return tInt, nil
		}
		if isCmp(ex.op) {
			fc.asm.Emit(bytecode.OpICmp)
			fc.genCmpEpilogue(ex.op)
			return tInt, nil
		}
	case xt.Kind == TypeFloat && yt.Kind == TypeFloat:
		if op, ok := floatOps[ex.op]; ok {
			fc.asm.Emit(op)
			return tFloat, nil
		}
		if isCmp(ex.op) {
			fc.asm.Emit(bytecode.OpFCmp)
			fc.genCmpEpilogue(ex.op)
			return tInt, nil
		}
	case xt.Kind == TypeStr && yt.Kind == TypeStr:
		if ex.op == "+" {
			fc.asm.Emit(bytecode.OpSCat)
			return tStr, nil
		}
		if isCmp(ex.op) {
			fc.asm.Emit(bytecode.OpSCmp)
			fc.genCmpEpilogue(ex.op)
			return tInt, nil
		}
	}
	return nil, errAt(ex.line, "invalid operands for %s: %s and %s", ex.op, xt, yt)
}

var intOps = map[string]bytecode.Opcode{
	"+": bytecode.OpIAdd, "-": bytecode.OpISub, "*": bytecode.OpIMul,
	"/": bytecode.OpIDiv, "%": bytecode.OpIRem,
	"&": bytecode.OpIAnd, "|": bytecode.OpIOr, "^": bytecode.OpIXor,
	"<<": bytecode.OpIShl, ">>": bytecode.OpIShr,
}

var floatOps = map[string]bytecode.Opcode{
	"+": bytecode.OpFAdd, "-": bytecode.OpFSub,
	"*": bytecode.OpFMul, "/": bytecode.OpFDiv,
}

func isCmp(op string) bool {
	switch op {
	case "==", "!=", "<", "<=", ">", ">=":
		return true
	}
	return false
}

// genCmpEpilogue turns the -1/0/1 comparison result on the stack into 0/1
// for the given operator, branch-free (c is known to be in {-1,0,1}).
func (fc *fnCompiler) genCmpEpilogue(op string) {
	a := fc.asm
	switch op {
	case "==": // 1 - c*c
		a.Emit(bytecode.OpDup).Emit(bytecode.OpIMul).Int(1).Emit(bytecode.OpIXor)
	case "!=": // c*c
		a.Emit(bytecode.OpDup).Emit(bytecode.OpIMul)
	case "<": // -(c>>63)
		a.Int(63).Emit(bytecode.OpIShr).Emit(bytecode.OpINeg)
	case ">": // (c+1)>>1
		a.Int(1).Emit(bytecode.OpIAdd).Int(1).Emit(bytecode.OpIShr)
	case "<=": // !(c>0)
		a.Int(1).Emit(bytecode.OpIAdd).Int(1).Emit(bytecode.OpIShr).Int(1).Emit(bytecode.OpIXor)
	case ">=": // !(c<0)
		a.Int(63).Emit(bytecode.OpIShr).Emit(bytecode.OpINeg).Int(1).Emit(bytecode.OpIXor)
	}
}

// normBool turns any int into 0/1 ((x cmp 0)^2).
func (fc *fnCompiler) normBool() {
	fc.asm.Int(0)
	fc.asm.Emit(bytecode.OpICmp)
	fc.asm.Emit(bytecode.OpDup)
	fc.asm.Emit(bytecode.OpIMul)
}
