package minilang

import (
	"fmt"

	"repro/internal/bytecode"
)

// Compile translates minilang source into a verified FTVM program.
func Compile(name, src string) (*bytecode.Program, error) {
	ast, err := parse(src)
	if err != nil {
		return nil, err
	}
	c := &compiler{
		b:       bytecode.NewBuilder(name),
		classes: make(map[string]*classInfo),
		funcs:   make(map[string]*funcInfo),
		globals: make(map[string]*globalInfo),
		natives: make(map[string]int32),
	}
	return c.compile(ast)
}

type classInfo struct {
	decl     *classDecl
	idx      int32
	fieldIdx map[string]int
}

type funcInfo struct {
	decl *funcDecl
	idx  int32
}

type globalInfo struct {
	decl *globalDecl
	idx  int32
}

type compiler struct {
	b       *bytecode.Builder
	classes map[string]*classInfo
	funcs   map[string]*funcInfo
	globals map[string]*globalInfo
	natives map[string]int32 // native sig -> declared method index
}

func (c *compiler) compile(ast *program) (*bytecode.Program, error) {
	for _, cd := range ast.classes {
		if _, dup := c.classes[cd.name]; dup {
			return nil, errAt(cd.line, "duplicate class %s", cd.name)
		}
		fieldNames := make([]string, len(cd.fields))
		fieldIdx := make(map[string]int, len(cd.fields))
		for i, f := range cd.fields {
			if _, dup := fieldIdx[f.name]; dup {
				return nil, errAt(cd.line, "class %s: duplicate field %s", cd.name, f.name)
			}
			fieldNames[i] = f.name
			fieldIdx[f.name] = i
		}
		idx := c.b.AddClass(cd.name, fieldNames...)
		c.classes[cd.name] = &classInfo{decl: cd, idx: idx, fieldIdx: fieldIdx}
	}
	// Validate field and global types now that all classes are known.
	for _, cd := range ast.classes {
		for _, f := range cd.fields {
			if err := c.checkType(f.typ, cd.line); err != nil {
				return nil, err
			}
		}
	}
	for _, g := range ast.globals {
		if _, dup := c.globals[g.name]; dup {
			return nil, errAt(g.line, "duplicate global %s", g.name)
		}
		if err := c.checkType(g.typ, g.line); err != nil {
			return nil, err
		}
		idx := c.b.AddStatic("G." + g.name)
		c.globals[g.name] = &globalInfo{decl: g, idx: idx}
	}
	for _, fd := range ast.funcs {
		if _, dup := c.funcs[fd.name]; dup {
			return nil, errAt(fd.line, "duplicate function %s", fd.name)
		}
		if builtins[fd.name] != nil {
			return nil, errAt(fd.line, "function %s shadows a builtin", fd.name)
		}
		for _, p := range fd.params {
			if err := c.checkType(p.typ, fd.line); err != nil {
				return nil, err
			}
		}
		if fd.ret.Kind != TypeVoid {
			if err := c.checkType(fd.ret, fd.line); err != nil {
				return nil, err
			}
		}
		idx := c.b.DeclareMethod(fd.name, len(fd.params), fd.ret.Kind != TypeVoid)
		c.funcs[fd.name] = &funcInfo{decl: fd, idx: idx}
	}
	mainInfo, ok := c.funcs["main"]
	if !ok {
		return nil, errAt(1, "no main function")
	}
	if len(mainInfo.decl.params) != 0 || mainInfo.decl.ret.Kind != TypeVoid {
		return nil, errAt(mainInfo.decl.line, "main must take no parameters and return nothing")
	}
	for _, fd := range ast.funcs {
		fc := &fnCompiler{
			c:      c,
			f:      fd,
			asm:    c.b.Define(c.funcs[fd.name].idx),
			locals: []map[string]localVar{make(map[string]localVar)},
		}
		// Parameters occupy local slots 0..NArgs-1 (the calling convention).
		for i, p := range fd.params {
			scope := fc.locals[0]
			if _, dup := scope[p.name]; dup {
				return nil, errAt(fd.line, "duplicate parameter %s", p.name)
			}
			scope[p.name] = localVar{slot: int32(i), typ: p.typ}
		}
		if fd.name == "main" {
			// Global initializers run in declaration order before main.
			for _, g := range ast.globals {
				if g.init == nil {
					continue
				}
				t, err := fc.genExpr(g.init)
				if err != nil {
					return nil, err
				}
				if !assignable(g.typ, t) {
					return nil, errAt(g.line, "cannot initialize global %s (%s) with %s", g.name, g.typ, t)
				}
				fc.asm.Emit(bytecode.OpPutS, c.globals[g.name].idx)
			}
		}
		if err := fc.genBody(fd.body); err != nil {
			return nil, err
		}
		fc.asm.Done()
	}
	return c.b.Program()
}

// checkType validates that class names resolve.
func (c *compiler) checkType(t *Type, line int) error {
	switch t.Kind {
	case TypeClass:
		if _, ok := c.classes[t.Class]; !ok {
			return errAt(line, "unknown class %s", t.Class)
		}
	case TypeArray:
		return c.checkType(t.Elem, line)
	}
	return nil
}

// nativeMethod lazily declares a native stub for sig.
func (c *compiler) nativeMethod(sig string, arity int, returns bool) int32 {
	if idx, ok := c.natives[sig]; ok {
		return idx
	}
	idx := c.b.DeclareNative("$n_"+sig, sig, arity, returns)
	c.natives[sig] = idx
	return idx
}

type localVar struct {
	slot int32
	typ  *Type
}

type loopCtx struct {
	breakLabel, contLabel string
	lockDepth             int
}

type fnCompiler struct {
	c      *compiler
	f      *funcDecl
	asm    *bytecode.Asm
	locals []map[string]localVar
	labelN int
	loops  []loopCtx
	// lockSlots holds the temp local of each active lock() block, innermost
	// last; return/break/continue unwind them.
	lockSlots []int32
}

func (fc *fnCompiler) label(prefix string) string {
	fc.labelN++
	return fmt.Sprintf("%s_%d", prefix, fc.labelN)
}

func (fc *fnCompiler) pushScope() { fc.locals = append(fc.locals, make(map[string]localVar)) }
func (fc *fnCompiler) popScope()  { fc.locals = fc.locals[:len(fc.locals)-1] }

func (fc *fnCompiler) declare(name string, typ *Type, line int) error {
	scope := fc.locals[len(fc.locals)-1]
	if _, dup := scope[name]; dup {
		return errAt(line, "duplicate variable %s", name)
	}
	scope[name] = localVar{slot: fc.asm.Local(), typ: typ}
	return nil
}

func (fc *fnCompiler) lookup(name string) (localVar, bool) {
	for i := len(fc.locals) - 1; i >= 0; i-- {
		if v, ok := fc.locals[i][name]; ok {
			return v, true
		}
	}
	return localVar{}, false
}

// genBody compiles a function body and guarantees termination of all paths.
func (fc *fnCompiler) genBody(body []stmt) error {
	if err := fc.genStmts(body); err != nil {
		return err
	}
	// Implicit return (the verifier rejects falling off the end).
	if fc.f.ret.Kind == TypeVoid {
		fc.asm.Emit(bytecode.OpRet)
		return nil
	}
	// A value-returning function must return on every path; emit a trap
	// (division by zero is a deterministic fatal error) in case control
	// reaches the end — simpler than full path analysis and loud in tests.
	fc.asm.Int(0).Int(0).Emit(bytecode.OpIDiv).Emit(bytecode.OpPop)
	fc.asm.Int(0)
	fc.asm.Emit(bytecode.OpRetV)
	return nil
}

func (fc *fnCompiler) genStmts(body []stmt) error {
	for _, s := range body {
		if err := fc.genStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (fc *fnCompiler) genStmt(s stmt) error {
	switch st := s.(type) {
	case *varStmt:
		var typ *Type
		if st.init != nil {
			t, err := fc.genExpr(st.init)
			if err != nil {
				return err
			}
			if st.typ != nil {
				if err := fc.c.checkType(st.typ, st.line); err != nil {
					return err
				}
				if !assignable(st.typ, t) {
					return errAt(st.line, "cannot assign %s to %s %s", t, st.typ, st.name)
				}
				typ = st.typ
			} else {
				if t.Kind == TypeVoid {
					return errAt(st.line, "initializer of %s has no value", st.name)
				}
				if t.Kind == TypeNull {
					return errAt(st.line, "cannot infer type of %s from null; declare a type", st.name)
				}
				typ = t
			}
		} else {
			if err := fc.c.checkType(st.typ, st.line); err != nil {
				return err
			}
			typ = st.typ
			fc.genZero(typ)
		}
		if err := fc.declare(st.name, typ, st.line); err != nil {
			return err
		}
		v, _ := fc.lookup(st.name)
		fc.asm.Store(v.slot)
		return nil

	case *assignStmt:
		return fc.genAssign(st)

	case *exprStmt:
		t, err := fc.genExpr(st.e)
		if err != nil {
			return err
		}
		if t.Kind != TypeVoid {
			fc.asm.Emit(bytecode.OpPop)
		}
		return nil

	case *ifStmt:
		elseL, endL := fc.label("else"), fc.label("endif")
		if err := fc.genCond(st.cond); err != nil {
			return err
		}
		fc.asm.Jz(elseL)
		if err := fc.genScoped(st.then); err != nil {
			return err
		}
		fc.asm.Jmp(endL)
		fc.asm.Label(elseL)
		if st.alt != nil {
			if err := fc.genScoped(st.alt); err != nil {
				return err
			}
		}
		fc.asm.Label(endL)
		return nil

	case *whileStmt:
		headL, endL := fc.label("while"), fc.label("endwhile")
		fc.asm.Label(headL)
		if err := fc.genCond(st.cond); err != nil {
			return err
		}
		fc.asm.Jz(endL)
		fc.loops = append(fc.loops, loopCtx{breakLabel: endL, contLabel: headL, lockDepth: len(fc.lockSlots)})
		if err := fc.genScoped(st.body); err != nil {
			return err
		}
		fc.loops = fc.loops[:len(fc.loops)-1]
		fc.asm.Jmp(headL)
		fc.asm.Label(endL)
		return nil

	case *forStmt:
		fc.pushScope()
		if st.init != nil {
			if err := fc.genStmt(st.init); err != nil {
				return err
			}
		}
		headL, postL, endL := fc.label("for"), fc.label("forpost"), fc.label("endfor")
		fc.asm.Label(headL)
		if st.cond != nil {
			if err := fc.genCond(st.cond); err != nil {
				return err
			}
			fc.asm.Jz(endL)
		}
		fc.loops = append(fc.loops, loopCtx{breakLabel: endL, contLabel: postL, lockDepth: len(fc.lockSlots)})
		if err := fc.genScoped(st.body); err != nil {
			return err
		}
		fc.loops = fc.loops[:len(fc.loops)-1]
		fc.asm.Label(postL)
		if st.post != nil {
			if err := fc.genStmt(st.post); err != nil {
				return err
			}
		}
		fc.asm.Jmp(headL)
		fc.asm.Label(endL)
		fc.popScope()
		return nil

	case *returnStmt:
		if st.value == nil {
			if fc.f.ret.Kind != TypeVoid {
				return errAt(st.line, "missing return value in %s", fc.f.name)
			}
			fc.unwindLocks(0)
			fc.asm.Emit(bytecode.OpRet)
			return nil
		}
		t, err := fc.genExpr(st.value)
		if err != nil {
			return err
		}
		if !assignable(fc.f.ret, t) {
			return errAt(st.line, "cannot return %s from %s (returns %s)", t, fc.f.name, fc.f.ret)
		}
		fc.unwindLocks(0)
		fc.asm.Emit(bytecode.OpRetV)
		return nil

	case *breakStmt:
		if len(fc.loops) == 0 {
			return errAt(st.line, "break outside a loop")
		}
		loop := fc.loops[len(fc.loops)-1]
		fc.unwindLocks(loop.lockDepth)
		fc.asm.Jmp(loop.breakLabel)
		return nil

	case *continueStmt:
		if len(fc.loops) == 0 {
			return errAt(st.line, "continue outside a loop")
		}
		loop := fc.loops[len(fc.loops)-1]
		fc.unwindLocks(loop.lockDepth)
		fc.asm.Jmp(loop.contLabel)
		return nil

	case *lockStmt:
		t, err := fc.genExpr(st.obj)
		if err != nil {
			return err
		}
		if !t.isRef() || t.Kind == TypeNull {
			return errAt(st.line, "lock needs a heap object, got %s", t)
		}
		slot := fc.asm.Local()
		fc.asm.Emit(bytecode.OpDup)
		fc.asm.Store(slot)
		fc.asm.Emit(bytecode.OpMEnter)
		fc.lockSlots = append(fc.lockSlots, slot)
		if err := fc.genScoped(st.body); err != nil {
			return err
		}
		fc.lockSlots = fc.lockSlots[:len(fc.lockSlots)-1]
		fc.asm.Load(slot)
		fc.asm.Emit(bytecode.OpMExit)
		return nil

	case *blockStmt:
		return fc.genScoped(st.body)

	case *haltStmt:
		fc.asm.Emit(bytecode.OpHalt)
		return nil

	case *yieldStmt:
		fc.asm.Emit(bytecode.OpYield)
		return nil

	default:
		return errAt(s.stmtLine(), "unhandled statement %T", s)
	}
}

// unwindLocks releases active lock() monitors down to depth (for early exits).
func (fc *fnCompiler) unwindLocks(depth int) {
	for i := len(fc.lockSlots) - 1; i >= depth; i-- {
		fc.asm.Load(fc.lockSlots[i])
		fc.asm.Emit(bytecode.OpMExit)
	}
}

func (fc *fnCompiler) genScoped(body []stmt) error {
	fc.pushScope()
	err := fc.genStmts(body)
	fc.popScope()
	return err
}

// genCond compiles an int-valued condition.
func (fc *fnCompiler) genCond(e expr) error {
	t, err := fc.genExpr(e)
	if err != nil {
		return err
	}
	if t.Kind != TypeInt {
		return errAt(e.exprLine(), "condition must be int, got %s", t)
	}
	return nil
}

// genZero pushes the zero value of t.
func (fc *fnCompiler) genZero(t *Type) {
	switch t.Kind {
	case TypeInt:
		fc.asm.Int(0)
	case TypeFloat:
		fc.asm.Float(0)
	default:
		fc.asm.Emit(bytecode.OpNull)
	}
}

func (fc *fnCompiler) genAssign(st *assignStmt) error {
	switch target := st.target.(type) {
	case *identExpr:
		if v, ok := fc.lookup(target.name); ok {
			t, err := fc.genExpr(st.value)
			if err != nil {
				return err
			}
			if !assignable(v.typ, t) {
				return errAt(st.line, "cannot assign %s to %s %s", t, v.typ, target.name)
			}
			fc.asm.Store(v.slot)
			return nil
		}
		if g, ok := fc.c.globals[target.name]; ok {
			t, err := fc.genExpr(st.value)
			if err != nil {
				return err
			}
			if !assignable(g.decl.typ, t) {
				return errAt(st.line, "cannot assign %s to global %s %s", t, g.decl.typ, target.name)
			}
			fc.asm.Emit(bytecode.OpPutS, g.idx)
			return nil
		}
		return errAt(st.line, "unknown variable %s", target.name)

	case *fieldExpr:
		objT, err := fc.genExpr(target.x)
		if err != nil {
			return err
		}
		ci, fi, ft, err := fc.fieldOf(objT, target.name, st.line)
		if err != nil {
			return err
		}
		_ = ci
		t, err := fc.genExpr(st.value)
		if err != nil {
			return err
		}
		if !assignable(ft, t) {
			return errAt(st.line, "cannot assign %s to field %s (%s)", t, target.name, ft)
		}
		fc.asm.Emit(bytecode.OpPutF, int32(fi))
		return nil

	case *indexExpr:
		arrT, err := fc.genExpr(target.x)
		if err != nil {
			return err
		}
		if arrT.Kind != TypeArray {
			return errAt(st.line, "indexed assignment needs an array, got %s", arrT)
		}
		idxT, err := fc.genExpr(target.idx)
		if err != nil {
			return err
		}
		if idxT.Kind != TypeInt {
			return errAt(st.line, "array index must be int, got %s", idxT)
		}
		t, err := fc.genExpr(st.value)
		if err != nil {
			return err
		}
		if !assignable(arrT.Elem, t) {
			return errAt(st.line, "cannot store %s into %s", t, arrT)
		}
		fc.asm.Emit(bytecode.OpAStore)
		return nil

	default:
		return errAt(st.line, "invalid assignment target")
	}
}

// fieldOf resolves a field access on a class-typed expression.
func (fc *fnCompiler) fieldOf(objT *Type, name string, line int) (*classInfo, int, *Type, error) {
	if objT.Kind != TypeClass {
		return nil, 0, nil, errAt(line, "field access on non-class %s", objT)
	}
	ci := fc.c.classes[objT.Class]
	fi, ok := ci.fieldIdx[name]
	if !ok {
		return nil, 0, nil, errAt(line, "class %s has no field %s", objT.Class, name)
	}
	return ci, fi, ci.decl.fields[fi].typ, nil
}
