package wire

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestRequestRoundTrip(t *testing.T) {
	prop := func(client, req, tenant uint64, op uint8, arg int64) bool {
		in := &Request{Client: client, Req: req, Tenant: tenant, Op: op % opMax, Arg: arg}
		out, err := DecodeRequest(EncodeRequest(in))
		return err == nil && reflect.DeepEqual(in, out)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReplyRoundTrip(t *testing.T) {
	prop := func(client, req uint64, status uint8, value int64, epoch uint64) bool {
		in := &Reply{Client: client, Req: req, Status: status % statusMax, Value: value, Epoch: epoch}
		out, err := DecodeReply(EncodeReply(in))
		return err == nil && reflect.DeepEqual(in, out)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRequestStrict: truncations, trailing bytes, and out-of-range opcodes
// must all reject — the fleet's request framing is exact, like frames/acks.
func TestRequestStrict(t *testing.T) {
	good := EncodeRequest(&Request{Client: 9, Req: 2, Tenant: 77, Op: OpAdd, Arg: 1234})
	for cut := 0; cut < len(good); cut++ {
		if _, err := DecodeRequest(good[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := DecodeRequest(append(append([]byte{}, good...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	if _, err := DecodeRequest(EncodeRequest(&Request{Op: opMax + 3})); err == nil {
		t.Fatal("out-of-range op accepted")
	}
}

func TestReplyStrict(t *testing.T) {
	good := EncodeReply(&Reply{Client: 9, Req: 2, Status: StatusOK, Value: -5, Epoch: 3})
	for cut := 0; cut < len(good); cut++ {
		if _, err := DecodeReply(good[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := DecodeReply(append(append([]byte{}, good...), 7)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	if _, err := DecodeReply(EncodeReply(&Reply{Status: statusMax + 1})); err == nil {
		t.Fatal("out-of-range status accepted")
	}
}

// TestClientOpInLog: the dedup record rides the ordinary record stream
// alongside every other record kind.
func TestClientOpInLog(t *testing.T) {
	var buf Buffer
	ops := []*ClientOp{
		{Client: 1, Req: 1, Tenant: 5, Op: OpAdd, Arg: 10, Result: 10},
		{Client: 2, Req: 1, Tenant: 5, Op: OpAdd, Arg: -3, Result: 7},
		{Client: 1, Req: 2, Tenant: 5, Op: OpGet, Arg: 0, Result: 7},
	}
	for _, op := range ops {
		if err := buf.Append(op); err != nil {
			t.Fatal(err)
		}
	}
	decoded, err := DecodeAll(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(ops) {
		t.Fatalf("decoded %d records, want %d", len(decoded), len(ops))
	}
	for i, r := range decoded {
		got, ok := r.(*ClientOp)
		if !ok || !reflect.DeepEqual(got, ops[i]) {
			t.Fatalf("record %d: %#v != %#v", i, r, ops[i])
		}
	}
}
