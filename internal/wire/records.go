// Package wire defines the replication log record types and their binary
// wire format: lock acquisition records and id maps (§4.2, replicated lock
// synchronization), thread scheduling records (§4.2, replicated thread
// scheduling), native-method result records (§4.1), output-commit intent
// markers (§3.4), and the framing/ack protocol spoken over a transport.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// RecType tags a record on the wire.
type RecType uint8

// Record types.
const (
	RecInvalid RecType = iota
	RecIDMap
	RecLockAcq
	RecSwitch
	RecNativeResult
	RecOutputIntent
	RecHeartbeat
	RecHalt
	RecLockInterval
	RecClientOp
)

func (t RecType) String() string {
	switch t {
	case RecIDMap:
		return "idmap"
	case RecLockAcq:
		return "lockacq"
	case RecSwitch:
		return "switch"
	case RecNativeResult:
		return "native"
	case RecOutputIntent:
		return "output"
	case RecHeartbeat:
		return "heartbeat"
	case RecHalt:
		return "halt"
	case RecLockInterval:
		return "lockinterval"
	case RecClientOp:
		return "clientop"
	default:
		return "invalid"
	}
}

// Record is any replication log record.
type Record interface {
	Type() RecType
}

// IDMap associates a virtual lock id with the thread acquisition that first
// acquired the lock at the primary: (l_id, t_id, t_asn).
type IDMap struct {
	LID  int64
	TID  string
	TASN uint64
}

// Type implements Record.
func (*IDMap) Type() RecType { return RecIDMap }

// LockAcq is a lock acquisition record: (t_id, t_asn, l_id, l_asn).
type LockAcq struct {
	TID  string
	TASN uint64
	LID  int64
	LASN uint64
}

// Type implements Record.
func (*LockAcq) Type() RecType { return RecLockAcq }

// LockInterval is the compressed form of a run of lock acquisition records
// (the DejaVu-style logical intervals of §6): thread TID performed Count
// consecutive monitor acquisitions — with no interleaved acquisition by any
// other thread — starting at its acquire sequence number StartTASN. Because
// threads execute deterministic programs, the interval's global position
// fully determines which locks were acquired; neither l_ids nor id maps are
// needed.
type LockInterval struct {
	TID       string
	StartTASN uint64
	Count     uint64
}

// Type implements Record.
func (*LockInterval) Type() RecType { return RecLockInterval }

// Switch is a thread scheduling record: the progress indicators of the
// descheduled thread plus the id of the next scheduled thread:
// (br_cnt, pc_off, mon_cnt, l_asn, t_id) per §4.2.
type Switch struct {
	TID       string // descheduled thread ("" at the very first dispatch)
	BrCnt     uint64 // cumulative control-flow changes executed by TID
	MethodIdx int32  // method executing at deschedule (progress cross-check)
	PCOff     int32  // bytecode offset within that method
	MonCnt    uint64 // monitor acquisitions+releases performed by TID
	LASN      uint64 // acquire seq number of the monitor TID waits on (0 none)
	Reason    uint8  // thread state at deschedule (vm.ThreadState): blocking
	//               // instructions run in phases at one (br_cnt, pc), so the
	//               // state disambiguates which phase the switch landed on
	Chk     uint64 // rolling control-path checksum (divergence detection)
	NextTID string // thread scheduled next
}

// Type implements Record.
func (*Switch) Type() RecType { return RecSwitch }

// WireValue is a replica-independent encoding of a native-method result:
// heap references are flattened (only null and string referents may cross
// the wire; other reference results would be meaningless at the backup).
type WireValue struct {
	Kind uint8 // 0 null, 1 int, 2 float, 3 string
	I    int64
	F    float64
	S    string
}

// WireValue kinds.
const (
	WireNull uint8 = iota
	WireInt
	WireFloat
	WireStr
)

// NativeResult logs the results of one intercepted native-method invocation:
// the invoking thread, its per-thread native sequence number, the method
// signature, the result values, and opaque side-effect-handler state
// produced by the handler's log method.
type NativeResult struct {
	TID         string
	NatSeq      uint64
	Sig         string
	Results     []WireValue
	HandlerData []byte
}

// Type implements Record.
func (*NativeResult) Type() RecType { return RecNativeResult }

// OutputIntent marks an output commit point: the primary logs it, flushes,
// and waits for an ack before performing the output (§3.4). If it is the
// final record in the log, the output's completion is uncertain and must be
// tested or idempotently replayed during recovery.
type OutputIntent struct {
	TID         string
	NatSeq      uint64
	Sig         string
	OutSeq      uint64
	HandlerData []byte
}

// Type implements Record.
func (*OutputIntent) Type() RecType { return RecOutputIntent }

// ClientOp records one executed client request: which client asked, the
// request's per-client sequence number, the tenant it addressed, the
// operation, and the result the primary computed. It is the at-most-once
// dedup table riding the replication log — a backup that replays its log
// rebuilds, besides every tenant's state, the (client → last request, last
// result) table, so a retry that crosses a failover is answered from the log
// instead of being executed a second time.
type ClientOp struct {
	Client uint64
	Req    uint64
	Tenant uint64
	Op     uint8
	Arg    int64
	Result int64
}

// Type implements Record.
func (*ClientOp) Type() RecType { return RecClientOp }

// Heartbeat carries liveness from primary to backup.
type Heartbeat struct {
	Seq uint64
}

// Type implements Record.
func (*Heartbeat) Type() RecType { return RecHeartbeat }

// Halt marks a clean, final shutdown of the primary (no failover needed).
type Halt struct{}

// Type implements Record.
func (*Halt) Type() RecType { return RecHalt }

// ErrBadRecord is wrapped by all decoding failures.
var ErrBadRecord = errors.New("bad wire record")

// ErrTruncated is the record-stream analogue of ErrShortFrame: the input
// ended in the middle of a record, so what is there is a prefix of a valid
// stream rather than bytes that can never decode. It wraps ErrBadRecord (a
// transport payload is always a complete batch, so existing callers treat it
// as corruption); readers that may see a partial tail — a capture file cut
// off by a crash — distinguish it with errors.Is.
var ErrTruncated = fmt.Errorf("%w: truncated record", ErrBadRecord)

// Buffer accumulates encoded records.
type Buffer struct {
	b   []byte
	tmp [binary.MaxVarintLen64]byte
	n   int // record count
}

// Len returns the byte length of the encoded records.
func (w *Buffer) Len() int { return len(w.b) }

// Count returns the number of records appended.
func (w *Buffer) Count() int { return w.n }

// Bytes returns the encoded records (valid until the next Append/Reset).
func (w *Buffer) Bytes() []byte { return w.b }

// Reset clears the buffer.
func (w *Buffer) Reset() { w.b = w.b[:0]; w.n = 0 }

func (w *Buffer) u8(v uint8)     { w.b = append(w.b, v) }
func (w *Buffer) uv(v uint64)    { w.b = append(w.b, w.tmp[:binary.PutUvarint(w.tmp[:], v)]...) }
func (w *Buffer) sv(v int64)     { w.b = append(w.b, w.tmp[:binary.PutVarint(w.tmp[:], v)]...) }
func (w *Buffer) str(s string)   { w.uv(uint64(len(s))); w.b = append(w.b, s...) }
func (w *Buffer) bytes(p []byte) { w.uv(uint64(len(p))); w.b = append(w.b, p...) }

// Append encodes r into the buffer.
func (w *Buffer) Append(r Record) error {
	w.u8(uint8(r.Type()))
	switch rec := r.(type) {
	case *IDMap:
		w.sv(rec.LID)
		w.str(rec.TID)
		w.uv(rec.TASN)
	case *LockAcq:
		w.str(rec.TID)
		w.uv(rec.TASN)
		w.sv(rec.LID)
		w.uv(rec.LASN)
	case *Switch:
		w.str(rec.TID)
		w.uv(rec.BrCnt)
		w.sv(int64(rec.MethodIdx))
		w.sv(int64(rec.PCOff))
		w.uv(rec.MonCnt)
		w.uv(rec.LASN)
		w.u8(rec.Reason)
		w.uv(rec.Chk)
		w.str(rec.NextTID)
	case *NativeResult:
		w.str(rec.TID)
		w.uv(rec.NatSeq)
		w.str(rec.Sig)
		w.uv(uint64(len(rec.Results)))
		for _, v := range rec.Results {
			w.u8(v.Kind)
			switch v.Kind {
			case WireInt:
				w.sv(v.I)
			case WireFloat:
				w.uv(math.Float64bits(v.F))
			case WireStr:
				w.str(v.S)
			}
		}
		w.bytes(rec.HandlerData)
	case *OutputIntent:
		w.str(rec.TID)
		w.uv(rec.NatSeq)
		w.str(rec.Sig)
		w.uv(rec.OutSeq)
		w.bytes(rec.HandlerData)
	case *LockInterval:
		w.str(rec.TID)
		w.uv(rec.StartTASN)
		w.uv(rec.Count)
	case *ClientOp:
		w.uv(rec.Client)
		w.uv(rec.Req)
		w.uv(rec.Tenant)
		w.u8(rec.Op)
		w.sv(rec.Arg)
		w.sv(rec.Result)
	case *Heartbeat:
		w.uv(rec.Seq)
	case *Halt:
	default:
		return fmt.Errorf("%w: unknown record type %T", ErrBadRecord, r)
	}
	w.n++
	return nil
}

// Decoder reads records from an encoded byte stream.
type Decoder struct {
	b   []byte
	pos int
	err error
}

// NewDecoder returns a decoder over b.
func NewDecoder(b []byte) *Decoder { return &Decoder{b: b} }

// More reports whether records remain and no error has occurred.
func (d *Decoder) More() bool { return d.err == nil && d.pos < len(d.b) }

// Err returns the first decoding error.
func (d *Decoder) Err() error { return d.err }

func (d *Decoder) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s at offset %d", ErrBadRecord, msg, d.pos)
	}
}

// failShort records a truncation: the input is a proper prefix of a valid
// record stream, distinguished from corruption for streaming readers.
func (d *Decoder) failShort(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s at offset %d", ErrTruncated, msg, d.pos)
	}
}

func (d *Decoder) u8() uint8 {
	if d.err != nil {
		return 0
	}
	if d.pos >= len(d.b) {
		d.failShort("byte cut short")
		return 0
	}
	v := d.b[d.pos]
	d.pos++
	return v
}

func (d *Decoder) uv() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.pos:])
	if n == 0 {
		d.failShort("uvarint cut short")
		return 0
	}
	if n < 0 {
		d.fail("overlong uvarint")
		return 0
	}
	d.pos += n
	return v
}

func (d *Decoder) sv() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.pos:])
	if n == 0 {
		d.failShort("varint cut short")
		return 0
	}
	if n < 0 {
		d.fail("overlong varint")
		return 0
	}
	d.pos += n
	return v
}

func (d *Decoder) str() string {
	n := d.uv()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.b)-d.pos) < n {
		d.failShort("string cut short")
		return ""
	}
	s := string(d.b[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s
}

func (d *Decoder) bytes() []byte {
	n := d.uv()
	if d.err != nil {
		return nil
	}
	if uint64(len(d.b)-d.pos) < n {
		d.failShort("bytes cut short")
		return nil
	}
	out := make([]byte, n)
	copy(out, d.b[d.pos:d.pos+int(n)])
	d.pos += int(n)
	return out
}

// Next decodes the next record.
func (d *Decoder) Next() (Record, error) {
	t := RecType(d.u8())
	if d.err != nil {
		return nil, d.err
	}
	var r Record
	switch t {
	case RecIDMap:
		r = &IDMap{LID: d.sv(), TID: d.str(), TASN: d.uv()}
	case RecLockAcq:
		r = &LockAcq{TID: d.str(), TASN: d.uv(), LID: d.sv(), LASN: d.uv()}
	case RecSwitch:
		r = &Switch{
			TID: d.str(), BrCnt: d.uv(),
			MethodIdx: int32(d.sv()), PCOff: int32(d.sv()),
			MonCnt: d.uv(), LASN: d.uv(), Reason: d.u8(), Chk: d.uv(), NextTID: d.str(),
		}
	case RecNativeResult:
		rec := &NativeResult{TID: d.str(), NatSeq: d.uv(), Sig: d.str()}
		n := d.uv()
		if d.err == nil && n > 1<<16 {
			d.fail("implausible result count")
		}
		for i := uint64(0); i < n && d.err == nil; i++ {
			v := WireValue{Kind: d.u8()}
			switch v.Kind {
			case WireNull:
			case WireInt:
				v.I = d.sv()
			case WireFloat:
				v.F = math.Float64frombits(d.uv())
			case WireStr:
				v.S = d.str()
			default:
				d.fail("bad wire value kind")
			}
			rec.Results = append(rec.Results, v)
		}
		rec.HandlerData = d.bytes()
		r = rec
	case RecOutputIntent:
		r = &OutputIntent{TID: d.str(), NatSeq: d.uv(), Sig: d.str(), OutSeq: d.uv(), HandlerData: d.bytes()}
	case RecLockInterval:
		r = &LockInterval{TID: d.str(), StartTASN: d.uv(), Count: d.uv()}
	case RecClientOp:
		r = &ClientOp{Client: d.uv(), Req: d.uv(), Tenant: d.uv(), Op: d.u8(), Arg: d.sv(), Result: d.sv()}
	case RecHeartbeat:
		r = &Heartbeat{Seq: d.uv()}
	case RecHalt:
		r = &Halt{}
	default:
		d.fail(fmt.Sprintf("unknown record type %d", t))
	}
	if d.err != nil {
		return nil, d.err
	}
	return r, nil
}

// DecodeAll decodes every record in b.
func DecodeAll(b []byte) ([]Record, error) {
	d := NewDecoder(b)
	var out []Record
	for d.More() {
		r, err := d.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
