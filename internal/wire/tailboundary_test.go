package wire

import (
	"bytes"
	"errors"
	"testing"
)

// The capture-log reader streams frames off a file that may have been cut
// off mid-write by a crash. These tests pin the truncation-vs-corruption
// contract that reader depends on: a proper prefix of a valid frame or
// record stream fails with ErrShortFrame/ErrTruncated (need more bytes),
// while bytes that can never decode — overlong varints, bad flags, unknown
// record types — fail with plain ErrBadRecord.

func TestFramePrefixEveryTailBoundary(t *testing.T) {
	full := EncodeFrame(&Frame{Seq: 300, Epoch: 7, AckWanted: true, Payload: []byte("payload")})
	for cut := 0; cut < len(full); cut++ {
		_, _, err := DecodeFramePrefix(full[:cut])
		if !errors.Is(err, ErrShortFrame) {
			t.Fatalf("prefix %d/%d bytes: err=%v, want ErrShortFrame", cut, len(full), err)
		}
		if !errors.Is(err, ErrBadRecord) {
			t.Fatalf("ErrShortFrame must keep wrapping ErrBadRecord; got %v", err)
		}
	}
	f, rest, err := DecodeFramePrefix(full)
	if err != nil || len(rest) != 0 || f.Seq != 300 || !bytes.Equal(f.Payload, []byte("payload")) {
		t.Fatalf("full frame: %+v rest=%d err=%v", f, len(rest), err)
	}
}

func TestFramePrefixZeroLengthPayload(t *testing.T) {
	// A zero-payload frame ends exactly at the header boundary — the case a
	// naive "header present but no payload yet" check misclassifies.
	empty := EncodeFrame(&Frame{Seq: 5, Epoch: 2})
	f, rest, err := DecodeFramePrefix(empty)
	if err != nil || len(rest) != 0 || f.Seq != 5 || len(f.Payload) != 0 {
		t.Fatalf("zero-payload frame: %+v rest=%d err=%v", f, len(rest), err)
	}
	// Concatenated after another frame it must hand back the tail intact.
	next := EncodeFrame(&Frame{Seq: 6, Epoch: 2, Payload: []byte("x")})
	f, rest, err = DecodeFramePrefix(append(append([]byte(nil), empty...), next...))
	if err != nil || f.Seq != 5 || !bytes.Equal(rest, next) {
		t.Fatalf("zero-payload + tail: %+v rest=%q err=%v", f, rest, err)
	}
}

func TestFramePrefixCorruptionIsNotShort(t *testing.T) {
	cases := map[string][]byte{
		"overlong seq varint":   bytes.Repeat([]byte{0xFF}, 11),
		"bad flags byte":        {0x01, 0x00, 0x07, 0x00},
		"overlong length":       append([]byte{0x01, 0x00, 0x01}, bytes.Repeat([]byte{0xFF}, 11)...),
		"overlong epoch varint": append([]byte{0x01}, bytes.Repeat([]byte{0xFF}, 11)...),
	}
	for name, in := range cases {
		_, _, err := DecodeFramePrefix(in)
		if !errors.Is(err, ErrBadRecord) {
			t.Errorf("%s: err=%v, want ErrBadRecord", name, err)
		}
		if errors.Is(err, ErrShortFrame) {
			t.Errorf("%s: classified as short frame, but no amount of extra bytes can fix it: %v", name, err)
		}
	}
}

// TestDecoderEveryTailBoundary cuts an encoded record batch at every byte
// position: each cut either decodes a shorter batch (the cut landed on a
// record boundary) or fails with ErrTruncated — never with a plain
// corruption error, and never silently succeeding past a partial record.
func TestDecoderEveryTailBoundary(t *testing.T) {
	var buf Buffer
	recs := []Record{
		&IDMap{LID: 3, TID: "0.1", TASN: 12},
		&NativeResult{
			TID: "0", NatSeq: 2, Sig: "sys.rand",
			Results:     []WireValue{{Kind: WireInt, I: -7}, {Kind: WireStr, S: "abc"}, {Kind: WireNull}},
			HandlerData: []byte{'r'},
		},
		&Switch{TID: "0", BrCnt: 900, MethodIdx: 4, PCOff: 17, MonCnt: 3, LASN: 2, Reason: 1, Chk: 1 << 40, NextTID: "0.1"},
		&OutputIntent{TID: "0.1", NatSeq: 9, Sig: "io.print", OutSeq: 4},
		&Halt{},
	}
	for _, r := range recs {
		if err := buf.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	full := buf.Bytes()
	complete := 0
	for cut := 0; cut <= len(full); cut++ {
		got, err := DecodeAll(full[:cut])
		if err == nil {
			complete++
			if cut == len(full) && len(got) != len(recs) {
				t.Fatalf("full batch decoded %d records, want %d", len(got), len(recs))
			}
			continue
		}
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d/%d: err=%v, want ErrTruncated", cut, len(full), err)
		}
	}
	// One clean decode per record boundary (including the empty prefix).
	if complete != len(recs)+1 {
		t.Fatalf("%d clean decode positions, want %d record boundaries", complete, len(recs)+1)
	}
}

func TestDecoderCorruptionIsNotTruncated(t *testing.T) {
	overlong := bytes.Repeat([]byte{0xFF}, 11)
	cases := map[string][]byte{
		"unknown record type": {0xEE},
		"overlong varint lid": append([]byte{byte(RecIDMap)}, overlong...),
		"overlong uvarint seq": append([]byte{byte(RecHeartbeat)}, overlong...),
		// NativeResult claiming 2^20 results: rejected before allocating.
		"implausible result count": {byte(RecNativeResult), 0x01, '0', 0x01, 0x01, 'r', 0x80, 0x80, 0x40},
	}
	for name, in := range cases {
		_, err := DecodeAll(in)
		if !errors.Is(err, ErrBadRecord) {
			t.Errorf("%s: err=%v, want ErrBadRecord", name, err)
		}
		if errors.Is(err, ErrTruncated) {
			t.Errorf("%s: classified as truncation: %v", name, err)
		}
	}
}
