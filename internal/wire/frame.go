package wire

import (
	"encoding/binary"
	"fmt"
)

// Frame is a batch of encoded records shipped primary→backup. AckWanted is
// set on output-commit flushes: the primary blocks until the backup
// acknowledges Seq (the pessimism of §3.4). Epoch is the view number the
// sender believes it is primary of: a receiver in a later view drops the
// frame without acknowledging it, so a deposed primary that missed its own
// failure detection (a healed partition, a slow process) can never satisfy
// an output commit against the new configuration — the split-brain window
// the view service closes.
type Frame struct {
	Seq       uint64
	Epoch     uint64
	AckWanted bool
	Payload   []byte
}

// AppendFrame serialises f onto dst and returns the extended slice. Callers
// that ship many frames reuse dst across calls (append-style, like
// strconv.AppendInt) so the steady-state frame path performs no allocation.
func AppendFrame(dst []byte, f *Frame) []byte {
	var hdr [3*binary.MaxVarintLen64 + 1]byte
	n := binary.PutUvarint(hdr[:], f.Seq)
	n += binary.PutUvarint(hdr[n:], f.Epoch)
	if f.AckWanted {
		hdr[n] = 1
	} else {
		hdr[n] = 0
	}
	n++
	n += binary.PutUvarint(hdr[n:], uint64(len(f.Payload)))
	dst = append(dst, hdr[:n]...)
	return append(dst, f.Payload...)
}

// EncodeFrame serialises f into a fresh slice.
func EncodeFrame(f *Frame) []byte {
	out := make([]byte, 0, len(f.Payload)+3*binary.MaxVarintLen64+1)
	return AppendFrame(out, f)
}

// DecodeFrame parses a frame produced by EncodeFrame. Trailing bytes after
// the payload are a framing violation (a mangled length or spliced messages)
// and reject the whole frame: a receiver that silently ignored them would
// log a payload whose boundary the sender never chose.
func DecodeFrame(b []byte) (*Frame, error) {
	f, rest, err := DecodeFramePrefix(b)
	if err != nil {
		return nil, err
	}
	if len(rest) > 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after frame payload", ErrBadRecord, len(rest))
	}
	return f, nil
}

// ErrShortFrame reports that the input ends before a complete frame: what is
// there is a prefix of a (possibly) valid frame, and a streaming reader that
// can obtain more bytes should, rather than declaring the stream corrupt. It
// wraps ErrBadRecord, so callers that treat every decode failure as
// corruption — a transport message is always a complete frame — keep their
// behaviour; readers over a byte stream with no message boundaries (the
// .ftlog capture reader) distinguish the two with errors.Is.
var ErrShortFrame = fmt.Errorf("%w: short frame", ErrBadRecord)

// DecodeFramePrefix parses one frame from the front of b and returns the
// remaining bytes, so a message carrying several concatenated frames — the
// consensus backend's AppendEntries batches, where each replicated log entry
// is a Frame (Seq = log index, Epoch = term) — decodes sequentially. The
// strict single-frame DecodeFrame is this plus an empty-rest check.
//
// Errors distinguish truncation from corruption: an input that is a proper
// prefix of a frame (varint cut mid-value, missing flags byte, payload
// shorter than its declared length) fails with ErrShortFrame; an input that
// can never decode no matter how many bytes follow (an overlong varint, an
// out-of-range flags byte) fails with plain ErrBadRecord.
func DecodeFramePrefix(b []byte) (*Frame, []byte, error) {
	seq, n := binary.Uvarint(b)
	if n == 0 {
		return nil, nil, fmt.Errorf("%w: frame seq cut short", ErrShortFrame)
	}
	if n < 0 {
		return nil, nil, fmt.Errorf("%w: overlong frame seq varint", ErrBadRecord)
	}
	b = b[n:]
	epoch, n := binary.Uvarint(b)
	if n == 0 {
		return nil, nil, fmt.Errorf("%w: frame epoch cut short", ErrShortFrame)
	}
	if n < 0 {
		return nil, nil, fmt.Errorf("%w: overlong frame epoch varint", ErrBadRecord)
	}
	b = b[n:]
	if len(b) < 1 {
		return nil, nil, fmt.Errorf("%w: missing frame flags", ErrShortFrame)
	}
	if b[0] > 1 {
		return nil, nil, fmt.Errorf("%w: bad frame flags %#x", ErrBadRecord, b[0])
	}
	ackWanted := b[0] == 1
	b = b[1:]
	plen, n := binary.Uvarint(b)
	if n == 0 {
		return nil, nil, fmt.Errorf("%w: frame length cut short", ErrShortFrame)
	}
	if n < 0 {
		return nil, nil, fmt.Errorf("%w: overlong frame length varint", ErrBadRecord)
	}
	b = b[n:]
	if uint64(len(b)) < plen {
		return nil, nil, fmt.Errorf("%w: frame payload %d of %d bytes", ErrShortFrame, len(b), plen)
	}
	payload := make([]byte, plen)
	copy(payload, b[:plen])
	return &Frame{Seq: seq, Epoch: epoch, AckWanted: ackWanted, Payload: payload}, b[plen:], nil
}

// SeqGate validates the frame sequence on the receiving side of the channel.
// Frames are numbered contiguously from 1 by the sender; a receiver behind a
// faulty link can observe duplicates (retransmission, a misbehaving middle
// box) or gaps (lost frames). Duplicates are harmless — the frame was already
// logged and at most needs re-acknowledging — but a gap means log records are
// gone for good, and the only safe reaction is to declare the channel failed
// while the logged prefix is still consistent.
type SeqGate struct {
	last uint64
}

// Admit classifies frame sequence seq: dup means the frame was already
// processed (drop it, re-ack if asked), gap means at least one frame was
// lost before it (the channel is no longer trustworthy). A frame with
// dup == gap == false is the expected next frame and Admit records it.
//
// Sequence zero is never assigned by a sender (numbering starts at 1), so a
// frame carrying it is corrupt, not a duplicate: classifying it as harmless
// would let a mangled header slip past the gate un-acked but also un-flagged.
// It reports as a gap — the channel is no longer trustworthy.
func (g *SeqGate) Admit(seq uint64) (dup, gap bool) {
	switch {
	case seq == 0:
		return false, true
	case seq <= g.last:
		return true, false
	case seq != g.last+1:
		return false, true
	default:
		g.last = seq
		return false, false
	}
}

// Last returns the highest admitted frame sequence.
func (g *SeqGate) Last() uint64 { return g.last }

// EncodeAck serialises an acknowledgement for frame seq under epoch. The ack
// echoes the receiver's epoch so a primary can discard acknowledgements from
// a configuration it no longer (or does not yet) belong to.
func EncodeAck(epoch, seq uint64) []byte {
	var buf [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], epoch)
	n += binary.PutUvarint(buf[n:], seq)
	out := make([]byte, n)
	copy(out, buf[:n])
	return out
}

// DecodeAck parses an acknowledgement. Trailing bytes reject the ack as
// ErrBadRecord: an ack is exactly two varints, and extra bytes mean the
// channel (or a foreign sender) mangled it — accepting the prefix would let
// a corrupt ack satisfy an output commit.
func DecodeAck(b []byte) (epoch, seq uint64, err error) {
	epoch, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, 0, fmt.Errorf("%w: truncated ack epoch", ErrBadRecord)
	}
	b = b[n:]
	seq, n = binary.Uvarint(b)
	if n <= 0 {
		return 0, 0, fmt.Errorf("%w: truncated ack seq", ErrBadRecord)
	}
	if len(b) != n {
		return 0, 0, fmt.Errorf("%w: %d trailing bytes after ack", ErrBadRecord, len(b)-n)
	}
	return epoch, seq, nil
}
