package wire

import (
	"encoding/binary"
	"fmt"
)

// Client protocol framing: the at-most-once request/reply messages the
// serving fleet (internal/fleet) speaks with clients. A client stamps every
// request with its own id and a per-client request sequence number, and
// retries the *same* (Client, Req) until it gets a reply — the server side
// dedups on that pair (the ClientOp records in the replication log), so a
// retry that lands after a failover is answered from the promoted replica's
// replayed log instead of being executed twice.

// Tenant-machine opcodes carried in Request.Op.
const (
	// OpGet reads the tenant's value.
	OpGet uint8 = iota
	// OpAdd adds Arg to the tenant's value and returns the new value.
	OpAdd
	// OpSet overwrites the tenant's value with Arg and returns it.
	OpSet
	opMax
)

// OpKinds returns the number of valid opcodes; Op values must satisfy
// Op < OpKinds(). The load generator draws ops modulo this.
func OpKinds() uint8 { return opMax }

// OpName renders an opcode for traces.
func OpName(op uint8) string {
	switch op {
	case OpGet:
		return "get"
	case OpAdd:
		return "add"
	case OpSet:
		return "set"
	default:
		return "invalid"
	}
}

// Request is one client request addressed to a tenant.
type Request struct {
	Client uint64 // client identity (stable across retries)
	Req    uint64 // per-client request sequence number, from 1
	Tenant uint64 // tenant the operation addresses
	Op     uint8  // tenant-machine opcode (OpGet/OpAdd/OpSet)
	Arg    int64
}

// Reply status codes.
const (
	// StatusOK: the operation executed (or was deduplicated) and Value holds
	// its result.
	StatusOK uint8 = iota
	// StatusNotOwner: the receiving replica is not the current primary of
	// the tenant's shard (stale routing, mid-rebalance) — retry after
	// re-consulting the router.
	StatusNotOwner
	// StatusUnavailable: the shard's replica group cannot commit right now
	// (backup being recruited, promotion replay in progress) — retry.
	StatusUnavailable
	// StatusStaleReq: the request's sequence number is older than the
	// client's newest deduplicated request — a protocol violation by the
	// client (it moved on before its previous request was answered).
	StatusStaleReq
	statusMax
)

// StatusName renders a status code for traces.
func StatusName(s uint8) string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusNotOwner:
		return "not-owner"
	case StatusUnavailable:
		return "unavailable"
	case StatusStaleReq:
		return "stale-req"
	default:
		return "invalid"
	}
}

// Reply answers one Request. Epoch is the shard view the answering primary
// served under — clients treat a NotOwner reply's epoch as a hint that their
// routing table is stale.
type Reply struct {
	Client uint64
	Req    uint64
	Status uint8
	Value  int64
	Epoch  uint64
}

// EncodeRequest serialises r.
func EncodeRequest(r *Request) []byte {
	buf := make([]byte, 0, 4*binary.MaxVarintLen64+1)
	var tmp [binary.MaxVarintLen64]byte
	buf = append(buf, tmp[:binary.PutUvarint(tmp[:], r.Client)]...)
	buf = append(buf, tmp[:binary.PutUvarint(tmp[:], r.Req)]...)
	buf = append(buf, tmp[:binary.PutUvarint(tmp[:], r.Tenant)]...)
	buf = append(buf, r.Op)
	buf = append(buf, tmp[:binary.PutVarint(tmp[:], r.Arg)]...)
	return buf
}

// DecodeRequest parses a Request. Like DecodeFrame, trailing bytes reject
// the message: the fleet's framing is exact, and a spliced or mangled
// request must not be half-understood.
func DecodeRequest(b []byte) (*Request, error) {
	var r Request
	var n int
	if r.Client, n = binary.Uvarint(b); n <= 0 {
		return nil, fmt.Errorf("%w: truncated request client", ErrBadRecord)
	}
	b = b[n:]
	if r.Req, n = binary.Uvarint(b); n <= 0 {
		return nil, fmt.Errorf("%w: truncated request seq", ErrBadRecord)
	}
	b = b[n:]
	if r.Tenant, n = binary.Uvarint(b); n <= 0 {
		return nil, fmt.Errorf("%w: truncated request tenant", ErrBadRecord)
	}
	b = b[n:]
	if len(b) < 1 {
		return nil, fmt.Errorf("%w: truncated request op", ErrBadRecord)
	}
	r.Op = b[0]
	if r.Op >= opMax {
		return nil, fmt.Errorf("%w: bad request op %d", ErrBadRecord, r.Op)
	}
	b = b[1:]
	if r.Arg, n = binary.Varint(b); n <= 0 {
		return nil, fmt.Errorf("%w: truncated request arg", ErrBadRecord)
	}
	if len(b) != n {
		return nil, fmt.Errorf("%w: %d trailing bytes after request", ErrBadRecord, len(b)-n)
	}
	return &r, nil
}

// EncodeReply serialises r.
func EncodeReply(r *Reply) []byte {
	buf := make([]byte, 0, 4*binary.MaxVarintLen64+1)
	var tmp [binary.MaxVarintLen64]byte
	buf = append(buf, tmp[:binary.PutUvarint(tmp[:], r.Client)]...)
	buf = append(buf, tmp[:binary.PutUvarint(tmp[:], r.Req)]...)
	buf = append(buf, r.Status)
	buf = append(buf, tmp[:binary.PutVarint(tmp[:], r.Value)]...)
	buf = append(buf, tmp[:binary.PutUvarint(tmp[:], r.Epoch)]...)
	return buf
}

// DecodeReply parses a Reply; trailing bytes are a framing violation.
func DecodeReply(b []byte) (*Reply, error) {
	var r Reply
	var n int
	if r.Client, n = binary.Uvarint(b); n <= 0 {
		return nil, fmt.Errorf("%w: truncated reply client", ErrBadRecord)
	}
	b = b[n:]
	if r.Req, n = binary.Uvarint(b); n <= 0 {
		return nil, fmt.Errorf("%w: truncated reply seq", ErrBadRecord)
	}
	b = b[n:]
	if len(b) < 1 {
		return nil, fmt.Errorf("%w: truncated reply status", ErrBadRecord)
	}
	r.Status = b[0]
	if r.Status >= statusMax {
		return nil, fmt.Errorf("%w: bad reply status %d", ErrBadRecord, r.Status)
	}
	b = b[1:]
	if r.Value, n = binary.Varint(b); n <= 0 {
		return nil, fmt.Errorf("%w: truncated reply value", ErrBadRecord)
	}
	b = b[n:]
	if r.Epoch, n = binary.Uvarint(b); n <= 0 {
		return nil, fmt.Errorf("%w: truncated reply epoch", ErrBadRecord)
	}
	if len(b) != n {
		return nil, fmt.Errorf("%w: %d trailing bytes after reply", ErrBadRecord, len(b)-n)
	}
	return &r, nil
}
