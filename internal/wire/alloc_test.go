package wire

import (
	"testing"
)

// The log record path runs once per monitor acquisition / thread switch on
// the primary's critical path; these tests pin its allocation behaviour so a
// refactor cannot silently reintroduce per-record garbage.

func TestBufferAppendAllocFree(t *testing.T) {
	var buf Buffer
	recs := []Record{
		&LockAcq{TID: "0.1", TASN: 42, LID: 7, LASN: 99},
		&IDMap{LID: 7, TID: "0.1", TASN: 42},
		&Switch{TID: "0.1", BrCnt: 1000, MethodIdx: 3, PCOff: 17, MonCnt: 12, LASN: 5, Reason: 1, Chk: 0xdeadbeef, NextTID: "0.2"},
		&LockInterval{TID: "0.1", StartTASN: 10, Count: 64},
		&Heartbeat{Seq: 9},
	}
	// Warm up: let the byte slice reach steady-state capacity.
	for i := 0; i < 64; i++ {
		for _, r := range recs {
			if err := buf.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		buf.Reset()
	}
	allocs := testing.AllocsPerRun(100, func() {
		buf.Reset()
		for _, r := range recs {
			if err := buf.Append(r); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Errorf("Buffer.Append steady-state allocs/run = %v, want 0", allocs)
	}
}

func TestAppendFrameAllocFree(t *testing.T) {
	payload := make([]byte, 4096)
	dst := make([]byte, 0, len(payload)+64)
	allocs := testing.AllocsPerRun(100, func() {
		dst = AppendFrame(dst[:0], &Frame{Seq: 12345, AckWanted: true, Payload: payload})
	})
	if allocs != 0 {
		t.Errorf("AppendFrame with capacity allocs/run = %v, want 0", allocs)
	}
}

func TestEncodeFrameSingleAlloc(t *testing.T) {
	payload := make([]byte, 4096)
	allocs := testing.AllocsPerRun(100, func() {
		_ = EncodeFrame(&Frame{Seq: 12345, AckWanted: true, Payload: payload})
	})
	if allocs > 1 {
		t.Errorf("EncodeFrame allocs/run = %v, want <= 1", allocs)
	}
}
