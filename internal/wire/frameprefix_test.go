package wire

import (
	"errors"
	"testing"
)

// DecodeFramePrefix must walk a concatenation of frames (the consensus
// backend's AppendEntries batches) and preserve DecodeFrame's strictness.
func TestDecodeFramePrefixSequence(t *testing.T) {
	frames := []*Frame{
		{Seq: 1, Epoch: 3, AckWanted: true, Payload: []byte("alpha")},
		{Seq: 2, Epoch: 3, Payload: nil},
		{Seq: 3, Epoch: 4, AckWanted: true, Payload: []byte{0xff, 0x00}},
	}
	var b []byte
	for _, f := range frames {
		b = AppendFrame(b, f)
	}
	rest := b
	for i, want := range frames {
		f, r, err := DecodeFramePrefix(rest)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Seq != want.Seq || f.Epoch != want.Epoch || f.AckWanted != want.AckWanted || string(f.Payload) != string(want.Payload) {
			t.Fatalf("frame %d round-trip mismatch: %+v vs %+v", i, f, want)
		}
		rest = r
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left after the last frame", len(rest))
	}
	// The strict entry point still rejects concatenations.
	if _, err := DecodeFrame(b); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("DecodeFrame accepted spliced frames: %v", err)
	}
	// Truncation inside a later frame surfaces as an error, not a short read.
	if _, _, err := DecodeFramePrefix(b[:len(b)-1]); err == nil {
		_, r, _ := DecodeFramePrefix(b[:len(b)-1])
		_, r, _ = DecodeFramePrefix(r)
		if _, _, err := DecodeFramePrefix(r); err == nil {
			t.Fatal("truncated trailing frame decoded")
		}
	}
}
