package wire

import (
	"reflect"
	"testing"
	"testing/quick"
)

func sampleRecords() []Record {
	return []Record{
		&IDMap{LID: 42, TID: "0.1", TASN: 7},
		&LockAcq{TID: "0.1", TASN: 7, LID: 42, LASN: 99},
		&Switch{TID: "0", BrCnt: 123456, MethodIdx: 3, PCOff: 17, MonCnt: 9, LASN: 2, Reason: 1, NextTID: "0.2"},
		&NativeResult{
			TID: "0.2", NatSeq: 5, Sig: "sys.clock",
			Results: []WireValue{
				{Kind: WireInt, I: -77},
				{Kind: WireFloat, F: 3.25},
				{Kind: WireStr, S: "hello"},
				{Kind: WireNull},
			},
			HandlerData: []byte{1, 2, 3},
		},
		&OutputIntent{TID: "0", NatSeq: 1, Sig: "io.print", OutSeq: 12, HandlerData: nil},
		&ClientOp{Client: 1_000_003, Req: 4, Tenant: 999, Op: OpAdd, Arg: -17, Result: 25},
		&Heartbeat{Seq: 8},
		&Halt{},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	var buf Buffer
	records := sampleRecords()
	for _, r := range records {
		if err := buf.Append(r); err != nil {
			t.Fatalf("append %T: %v", r, err)
		}
	}
	if buf.Count() != len(records) {
		t.Fatalf("count = %d", buf.Count())
	}
	decoded, err := DecodeAll(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(records) {
		t.Fatalf("decoded %d records, want %d", len(decoded), len(records))
	}
	for i := range records {
		want, got := records[i], decoded[i]
		if !reflect.DeepEqual(normalize(want), normalize(got)) {
			t.Fatalf("record %d: %#v != %#v", i, got, want)
		}
	}
}

// normalize maps empty slices to nil for DeepEqual.
func normalize(r Record) Record {
	if nr, ok := r.(*NativeResult); ok {
		cp := *nr
		if len(cp.HandlerData) == 0 {
			cp.HandlerData = nil
		}
		return &cp
	}
	if oi, ok := r.(*OutputIntent); ok {
		cp := *oi
		if len(cp.HandlerData) == 0 {
			cp.HandlerData = nil
		}
		return &cp
	}
	return r
}

func TestDecodeTruncation(t *testing.T) {
	var buf Buffer
	for _, r := range sampleRecords() {
		_ = buf.Append(r)
	}
	full := buf.Bytes()
	for n := 1; n < len(full); n++ {
		if _, err := DecodeAll(full[:n]); err == nil {
			// Truncation at a record boundary is legal; everywhere else
			// must error. Check it decoded strictly fewer records.
			recs, _ := DecodeAll(full[:n])
			if len(recs) >= len(sampleRecords()) {
				t.Fatalf("truncated decode at %d produced full set", n)
			}
		}
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := DecodeAll([]byte{0xFF, 0x01, 0x02}); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	f := &Frame{Seq: 900, Epoch: 7, AckWanted: true, Payload: []byte("records")}
	got, err := DecodeFrame(EncodeFrame(f))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 900 || got.Epoch != 7 || !got.AckWanted || string(got.Payload) != "records" {
		t.Fatalf("frame = %+v", got)
	}
	if _, err := DecodeFrame([]byte{}); err == nil {
		t.Fatal("empty frame decoded")
	}
	if _, err := DecodeFrame(append(EncodeFrame(f), 0xAA)); err == nil {
		t.Fatal("frame with trailing garbage decoded")
	}
	epoch, seq, err := DecodeAck(EncodeAck(3, 12345))
	if err != nil || epoch != 3 || seq != 12345 {
		t.Fatalf("ack = (%d,%d) (%v)", epoch, seq, err)
	}
}

// TestDecodeAckStrict: an acknowledgement is exactly two varints. A corrupt
// ack with trailing bytes must not be accepted for its prefix — an ack
// satisfies output commit, so leniency here is a correctness hole.
func TestDecodeAckStrict(t *testing.T) {
	if _, _, err := DecodeAck(nil); err == nil {
		t.Fatal("empty ack decoded")
	}
	if _, _, err := DecodeAck([]byte{0x03}); err == nil {
		t.Fatal("ack missing seq decoded")
	}
	if _, _, err := DecodeAck(append(EncodeAck(1, 9), 0x00)); err == nil {
		t.Fatal("ack with trailing byte decoded")
	}
	if _, _, err := DecodeAck([]byte{0x80}); err == nil {
		t.Fatal("unterminated varint decoded")
	}
}

// Property: LockAcq and Switch records round-trip for arbitrary field values.
func TestLockAcqProperty(t *testing.T) {
	prop := func(tid string, tasn uint64, lid int64, lasn uint64) bool {
		var buf Buffer
		in := &LockAcq{TID: tid, TASN: tasn, LID: lid, LASN: lasn}
		if err := buf.Append(in); err != nil {
			return false
		}
		out, err := DecodeAll(buf.Bytes())
		if err != nil || len(out) != 1 {
			return false
		}
		got, ok := out[0].(*LockAcq)
		return ok && *got == *in
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSwitchProperty(t *testing.T) {
	prop := func(tid, next string, br uint64, m, pc int32, mon, lasn uint64, reason uint8) bool {
		var buf Buffer
		in := &Switch{TID: tid, BrCnt: br, MethodIdx: m, PCOff: pc, MonCnt: mon, LASN: lasn, Reason: reason, NextTID: next}
		if err := buf.Append(in); err != nil {
			return false
		}
		out, err := DecodeAll(buf.Bytes())
		if err != nil || len(out) != 1 {
			return false
		}
		got, ok := out[0].(*Switch)
		return ok && *got == *in
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNativeResultStringProperty(t *testing.T) {
	prop := func(s string, i int64, f float64) bool {
		var buf Buffer
		in := &NativeResult{TID: "0", NatSeq: 1, Sig: "x", Results: []WireValue{
			{Kind: WireStr, S: s}, {Kind: WireInt, I: i}, {Kind: WireFloat, F: f},
		}}
		if err := buf.Append(in); err != nil {
			return false
		}
		out, err := DecodeAll(buf.Bytes())
		if err != nil || len(out) != 1 {
			return false
		}
		got := out[0].(*NativeResult)
		if len(got.Results) != 3 {
			return false
		}
		okF := got.Results[2].F == f || (f != f && got.Results[2].F != got.Results[2].F)
		return got.Results[0].S == s && got.Results[1].I == i && okF
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBufferReset(t *testing.T) {
	var buf Buffer
	_ = buf.Append(&Halt{})
	if buf.Len() == 0 || buf.Count() != 1 {
		t.Fatal("append did nothing")
	}
	buf.Reset()
	if buf.Len() != 0 || buf.Count() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestSeqGate(t *testing.T) {
	var g SeqGate
	for seq := uint64(1); seq <= 3; seq++ {
		if dup, gap := g.Admit(seq); dup || gap {
			t.Fatalf("seq %d: dup=%v gap=%v, want clean admit", seq, dup, gap)
		}
	}
	if dup, gap := g.Admit(2); !dup || gap {
		t.Fatalf("replayed seq 2: dup=%v gap=%v, want duplicate", dup, gap)
	}
	if dup, gap := g.Admit(3); !dup || gap {
		t.Fatalf("replayed seq 3: dup=%v gap=%v, want duplicate", dup, gap)
	}
	if dup, gap := g.Admit(5); dup || !gap {
		t.Fatalf("seq 5 after 3: dup=%v gap=%v, want gap", dup, gap)
	}
	// A gap is not recorded: the gate still expects 4 and stays broken.
	if dup, gap := g.Admit(6); dup || !gap {
		t.Fatalf("seq 6: dup=%v gap=%v, want gap again", dup, gap)
	}
	if g.Last() != 3 {
		t.Fatalf("Last() = %d, want 3", g.Last())
	}
	if dup, gap := g.Admit(4); dup || gap {
		t.Fatalf("seq 4: dup=%v gap=%v, want clean admit", dup, gap)
	}
}

// TestSeqGateZero: sequence numbers start at 1, so a frame claiming seq 0 is
// corrupt. Classifying it as a harmless dup (the old `seq <= last` shortcut)
// would drop it silently and leave the gate believing the channel is fine.
func TestSeqGateZero(t *testing.T) {
	var g SeqGate
	if dup, gap := g.Admit(0); dup || !gap {
		t.Fatalf("seq 0 on fresh gate: dup=%v gap=%v, want gap", dup, gap)
	}
	g = SeqGate{}
	if dup, gap := g.Admit(1); dup || gap {
		t.Fatalf("seq 1: dup=%v gap=%v", dup, gap)
	}
	if dup, gap := g.Admit(0); dup || !gap {
		t.Fatalf("seq 0 after 1: dup=%v gap=%v, want gap not dup", dup, gap)
	}
}
