package wire

import (
	"bytes"
	"errors"
	"testing"
)

// Fuzz targets for the wire decoders, in the style of the bytecode corpus
// (internal/bytecode/testdata/fuzz): checked-in seeds cover the interesting
// shapes — valid encodings, truncations, trailing garbage, huge varints —
// and the properties pin what "reject" and "round-trip" mean.

// FuzzDecodeFrame: any input either fails with ErrBadRecord or decodes to a
// frame that re-encodes byte-identically (the decoder accepts exactly the
// canonical encoding — no trailing bytes, no over-long payload claims).
func FuzzDecodeFrame(f *testing.F) {
	f.Add(EncodeFrame(&Frame{Seq: 1, Epoch: 0, Payload: []byte("hi")}))
	f.Add(EncodeFrame(&Frame{Seq: 900, Epoch: 7, AckWanted: true, Payload: []byte("records")}))
	f.Add(EncodeFrame(&Frame{Seq: 1<<63 + 5, Epoch: 1 << 62, AckWanted: true}))
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add([]byte{0x01, 0x00, 0x02, 0x05, 'x'})              // payload shorter than claimed
	f.Add(append(EncodeFrame(&Frame{Seq: 3}), 0xAA))        // trailing garbage
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80}) // unterminated varint
	f.Add([]byte{0x01, 0x01, 0x07, 0x00})                   // bad flags byte
	f.Add(EncodeFrame(&Frame{Seq: 5, Epoch: 2}))            // zero-length payload
	f.Add([]byte{0x01, 0x00, 0x00, 0x03})                   // cut exactly at header boundary
	f.Add(bytes.Repeat([]byte{0xFF}, 11))                   // overlong (not short) varint
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(data)
		if err != nil {
			if !errors.Is(err, ErrBadRecord) {
				t.Fatalf("DecodeFrame error %v does not wrap ErrBadRecord", err)
			}
			return
		}
		// Accepted frames survive an encode/decode round trip unchanged
		// (varints may be non-minimal in the input, so compare values, not
		// bytes).
		fr2, err := DecodeFrame(EncodeFrame(fr))
		if err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v", err)
		}
		if fr2.Seq != fr.Seq || fr2.Epoch != fr.Epoch || fr2.AckWanted != fr.AckWanted ||
			!bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatalf("frame round trip changed: %+v -> %+v", fr, fr2)
		}
	})
}

// FuzzDecodeAck: same contract for the ack path — the bug class fixed in
// this package was DecodeAck accepting trailing bytes, which let a corrupt
// ack satisfy an output commit.
func FuzzDecodeAck(f *testing.F) {
	f.Add(EncodeAck(0, 1))
	f.Add(EncodeAck(3, 12345))
	f.Add(EncodeAck(1<<62, 1<<63+9))
	f.Add([]byte{})
	f.Add([]byte{0x03})
	f.Add(append(EncodeAck(1, 9), 0x00))
	f.Add([]byte{0x80, 0x80, 0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		epoch, seq, err := DecodeAck(data)
		if err != nil {
			if !errors.Is(err, ErrBadRecord) {
				t.Fatalf("DecodeAck error %v does not wrap ErrBadRecord", err)
			}
			return
		}
		e2, s2, err := DecodeAck(EncodeAck(epoch, seq))
		if err != nil || e2 != epoch || s2 != seq {
			t.Fatalf("ack round trip changed: (%d,%d) -> (%d,%d) %v", epoch, seq, e2, s2, err)
		}
	})
}

// FuzzDecodeAll: record batches either decode fully or fail; whatever
// decodes re-encodes through a Buffer into a batch that decodes to the same
// number of records of the same types.
func FuzzDecodeAll(f *testing.F) {
	var buf Buffer
	_ = buf.Append(&IDMap{LID: 3, TID: "0", TASN: 1})
	_ = buf.Append(&LockAcq{TID: "1", TASN: 2, LID: 3, LASN: 4})
	_ = buf.Append(&Halt{})
	f.Add(append([]byte(nil), buf.Bytes()...))
	buf.Reset()
	_ = buf.Append(&Switch{TID: "0", BrCnt: 9, MethodIdx: 1, PCOff: 2, NextTID: "1"})
	_ = buf.Append(&OutputIntent{TID: "0", NatSeq: 1, Sig: "io.print", OutSeq: 1})
	f.Add(append([]byte(nil), buf.Bytes()...))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x01, 0x02})
	f.Add(append([]byte(nil), buf.Bytes()[:buf.Len()-1]...))              // trailing partial record
	f.Add(append([]byte{byte(RecIDMap)}, bytes.Repeat([]byte{0xFF}, 11)...)) // overlong varint field
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := DecodeAll(data)
		if err != nil {
			return
		}
		var out Buffer
		for _, r := range recs {
			if aerr := out.Append(r); aerr != nil {
				t.Fatalf("re-append decoded record: %v", aerr)
			}
		}
		recs2, err := DecodeAll(out.Bytes())
		if err != nil {
			t.Fatalf("re-decode of accepted batch failed: %v", err)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("batch round trip changed length: %d -> %d", len(recs), len(recs2))
		}
		for i := range recs {
			if recs[i].Type() != recs2[i].Type() {
				t.Fatalf("record %d changed type %v -> %v", i, recs[i].Type(), recs2[i].Type())
			}
		}
	})
}
