// Package heap implements the FTVM object heap: tagged runtime values,
// objects, arrays, strings, reference kinds (strong/soft/weak) and a
// mark-sweep garbage collector with a deterministic finalizer queue.
//
// Heap references are small integers handed out in allocation order. Because
// allocation order depends on thread interleaving, reference values are NOT
// stable across replicas of the same program — exactly the property that
// forces the paper's virtual lock-id (l_id) scheme in replicated execution.
package heap

import "strconv"

// Kind discriminates the runtime value variants held in stack slots, locals,
// fields and array elements.
type Kind uint8

// Value kinds. The zero Kind is invalid so that an uninitialised Value is
// distinguishable from a deliberate one.
const (
	KindInvalid Kind = iota
	KindInt
	KindFloat
	KindRef
)

func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindRef:
		return "ref"
	default:
		return "invalid"
	}
}

// Ref is a heap reference. The zero Ref is the null reference.
type Ref uint32

// NullRef is the null heap reference.
const NullRef Ref = 0

// Value is a tagged runtime value: an integer, a float, or a heap reference.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	R    Ref
}

// IntVal returns an integer value.
func IntVal(i int64) Value { return Value{Kind: KindInt, I: i} }

// FloatVal returns a floating-point value.
func FloatVal(f float64) Value { return Value{Kind: KindFloat, F: f} }

// RefVal returns a reference value.
func RefVal(r Ref) Value { return Value{Kind: KindRef, R: r} }

// Null returns the null reference value.
func Null() Value { return Value{Kind: KindRef, R: NullRef} }

// BoolVal returns the integer encoding of b (1 or 0).
func BoolVal(b bool) Value {
	if b {
		return IntVal(1)
	}
	return IntVal(0)
}

// IsNull reports whether v is the null reference.
func (v Value) IsNull() bool { return v.Kind == KindRef && v.R == NullRef }

// Truthy reports whether v is a non-zero integer (conditional jumps pop ints).
func (v Value) Truthy() bool { return v.Kind == KindInt && v.I != 0 }

func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindRef:
		if v.R == NullRef {
			return "null"
		}
		return "@" + strconv.FormatUint(uint64(v.R), 10)
	default:
		return "<invalid>"
	}
}

// Equal reports deep equality of the tagged representation (used by tests and
// by the backup when cross-checking logged native results).
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindInt:
		return v.I == o.I
	case KindFloat:
		return v.F == o.F
	case KindRef:
		return v.R == o.R
	default:
		return true
	}
}
