package heap

// Clone returns a deep copy of the heap: every live object, the free list,
// the reference maps, the finalize queue, the GC configuration and the
// stats. Ref values keep their numbering, so references held outside the
// heap (thread frames, monitors, interned-string tables) remain valid
// against the clone — the property the debugger's checkpoint cache depends
// on, since a resumed clone must allocate, collect and recycle slots in
// exactly the same order as the original.
func (h *Heap) Clone() *Heap {
	c := &Heap{
		slots:        make([]*Object, len(h.slots)),
		softRefs:     make(map[Ref]Ref, len(h.softRefs)),
		weakRefs:     make(map[Ref]Ref, len(h.weakRefs)),
		SoftAsStrong: h.SoftAsStrong,
		gcThreshold:  h.gcThreshold,
		maxSlots:     h.maxSlots,
		stats:        h.stats,
	}
	for i, o := range h.slots {
		if o == nil {
			continue
		}
		n := &Object{Kind: o.Kind, Class: o.Class, Mark: o.Mark, Finalize: o.Finalize}
		if o.Fields != nil {
			n.Fields = append([]Value(nil), o.Fields...)
		}
		if o.Ints != nil {
			n.Ints = append([]int64(nil), o.Ints...)
		}
		if o.Floats != nil {
			n.Floats = append([]float64(nil), o.Floats...)
		}
		if o.Refs != nil {
			n.Refs = append([]Ref(nil), o.Refs...)
		}
		if o.Str != nil {
			n.Str = append([]byte(nil), o.Str...)
		}
		c.slots[i] = n
	}
	if h.free != nil {
		c.free = append([]Ref(nil), h.free...)
	}
	if h.finalizeQueue != nil {
		c.finalizeQueue = append([]Ref(nil), h.finalizeQueue...)
	}
	for k, v := range h.softRefs {
		c.softRefs[k] = v
	}
	for k, v := range h.weakRefs {
		c.weakRefs[k] = v
	}
	return c
}
