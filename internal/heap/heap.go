package heap

import (
	"errors"
	"fmt"
	"sort"
)

// ObjKind discriminates what a heap slot holds.
type ObjKind uint8

// Object kinds.
const (
	ObjInvalid ObjKind = iota
	ObjRecord          // instance of a class: fixed field slots
	ObjIntArr
	ObjFloatArr
	ObjRefArr
	ObjString // immutable byte string
	ObjThread // handle to a VM thread; Class holds the virtual thread id
)

func (k ObjKind) String() string {
	switch k {
	case ObjRecord:
		return "record"
	case ObjIntArr:
		return "int[]"
	case ObjFloatArr:
		return "float[]"
	case ObjRefArr:
		return "ref[]"
	case ObjString:
		return "string"
	case ObjThread:
		return "thread"
	default:
		return "invalid"
	}
}

// RefStrength classifies a reference root registered with the heap. Soft and
// weak references live in reference objects; in fault-tolerant mode the VM
// treats soft references as strong (the paper's shortcut, §4.3) so that
// cache hits cannot diverge between replicas.
type RefStrength uint8

// Reference strengths.
const (
	Strong RefStrength = iota + 1
	Soft
	Weak
)

// Errors returned by heap accessors.
var (
	ErrNullRef       = errors.New("null reference")
	ErrBadRef        = errors.New("dangling or invalid reference")
	ErrIndexOOB      = errors.New("array index out of bounds")
	ErrKindMismatch  = errors.New("object kind mismatch")
	ErrFieldOOB      = errors.New("field index out of bounds")
	ErrNegativeSize  = errors.New("negative array size")
	ErrHeapExhausted = errors.New("heap exhausted")
)

// Object is a heap cell. Exactly one of the payload slices is used, selected
// by Kind. Class is the class index for records (or the thread id for
// ObjThread); Mark is GC state; Finalize marks records whose class declares a
// finalizer that has not run yet.
type Object struct {
	Kind     ObjKind
	Class    int32
	Fields   []Value   // ObjRecord
	Ints     []int64   // ObjIntArr
	Floats   []float64 // ObjFloatArr
	Refs     []Ref     // ObjRefArr
	Str      []byte    // ObjString
	Mark     bool
	Finalize bool
}

// Stats carries allocation and GC counters for the experiment harness.
type Stats struct {
	Allocs     uint64
	Frees      uint64
	GCs        uint64
	Finalized  uint64
	LiveAtLast uint64
}

// Heap is an FTVM object heap. It is not safe for concurrent use: the whole
// VM (all green threads) runs on a single goroutine.
type Heap struct {
	slots []*Object // slot 0 reserved for null
	free  []Ref     // recycled slots, popped in LIFO order

	// softRefs maps reference-holder object -> referent; registered by the
	// VM's soft-reference native. When SoftAsStrong is false a GC may clear
	// them; when true (FT mode) they are traced as strong.
	softRefs     map[Ref]Ref
	weakRefs     map[Ref]Ref
	SoftAsStrong bool

	// finalizeQueue holds records collected with Finalize set, in
	// deterministic (ascending ref) order; the VM drains it.
	finalizeQueue []Ref

	// gcThreshold triggers GC when live+pending allocations exceed it;
	// doubled after each collection that stays full. 0 disables auto-GC.
	gcThreshold int

	maxSlots int
	stats    Stats
}

// Option configures a Heap.
type Option func(*Heap)

// WithGCThreshold sets the allocation count that triggers an automatic
// collection (0 disables automatic GC).
func WithGCThreshold(n int) Option { return func(h *Heap) { h.gcThreshold = n } }

// WithMaxSlots bounds the number of live objects (0 means unbounded).
func WithMaxSlots(n int) Option { return func(h *Heap) { h.maxSlots = n } }

// New returns an empty heap.
func New(opts ...Option) *Heap {
	h := &Heap{
		slots:    make([]*Object, 1, 1024), // slot 0 = null
		softRefs: make(map[Ref]Ref),
		weakRefs: make(map[Ref]Ref),
	}
	for _, o := range opts {
		o(h)
	}
	return h
}

// Size returns the number of live objects.
func (h *Heap) Size() int {
	return len(h.slots) - 1 - len(h.free)
}

// Stats returns a copy of the heap counters.
func (h *Heap) Stats() Stats { return h.stats }

// NeedsGC reports whether the automatic-GC threshold has been crossed.
func (h *Heap) NeedsGC() bool {
	return h.gcThreshold > 0 && h.Size() >= h.gcThreshold
}

func (h *Heap) alloc(o *Object) (Ref, error) {
	if h.maxSlots > 0 && h.Size() >= h.maxSlots {
		return NullRef, ErrHeapExhausted
	}
	h.stats.Allocs++
	if n := len(h.free); n > 0 {
		r := h.free[n-1]
		h.free = h.free[:n-1]
		h.slots[r] = o
		return r, nil
	}
	h.slots = append(h.slots, o)
	return Ref(len(h.slots) - 1), nil
}

// AllocRecord allocates a class instance with nFields null/zero fields.
func (h *Heap) AllocRecord(class int32, nFields int, finalize bool) (Ref, error) {
	fields := make([]Value, nFields)
	for i := range fields {
		fields[i] = Null()
	}
	return h.alloc(&Object{Kind: ObjRecord, Class: class, Fields: fields, Finalize: finalize})
}

// AllocIntArr allocates an int array of length n.
func (h *Heap) AllocIntArr(n int) (Ref, error) {
	if n < 0 {
		return NullRef, ErrNegativeSize
	}
	return h.alloc(&Object{Kind: ObjIntArr, Ints: make([]int64, n)})
}

// AllocFloatArr allocates a float array of length n.
func (h *Heap) AllocFloatArr(n int) (Ref, error) {
	if n < 0 {
		return NullRef, ErrNegativeSize
	}
	return h.alloc(&Object{Kind: ObjFloatArr, Floats: make([]float64, n)})
}

// AllocRefArr allocates a reference array of length n (all null).
func (h *Heap) AllocRefArr(n int) (Ref, error) {
	if n < 0 {
		return NullRef, ErrNegativeSize
	}
	return h.alloc(&Object{Kind: ObjRefArr, Refs: make([]Ref, n)})
}

// AllocString allocates an immutable string object holding s.
func (h *Heap) AllocString(s string) (Ref, error) {
	return h.alloc(&Object{Kind: ObjString, Str: []byte(s)})
}

// AllocThread allocates a thread-handle object for VM thread slot id.
func (h *Heap) AllocThread(id int32) (Ref, error) {
	return h.alloc(&Object{Kind: ObjThread, Class: id})
}

// Get resolves r, failing on null or dangling references.
func (h *Heap) Get(r Ref) (*Object, error) {
	if r == NullRef {
		return nil, ErrNullRef
	}
	if int(r) >= len(h.slots) || h.slots[r] == nil {
		return nil, fmt.Errorf("%w: @%d", ErrBadRef, r)
	}
	return h.slots[r], nil
}

// GetKind resolves r and checks its kind.
func (h *Heap) GetKind(r Ref, k ObjKind) (*Object, error) {
	o, err := h.Get(r)
	if err != nil {
		return nil, err
	}
	if o.Kind != k {
		return nil, fmt.Errorf("%w: have %s, want %s", ErrKindMismatch, o.Kind, k)
	}
	return o, nil
}

// StringAt returns the Go string behind a string object.
func (h *Heap) StringAt(r Ref) (string, error) {
	o, err := h.GetKind(r, ObjString)
	if err != nil {
		return "", err
	}
	return string(o.Str), nil
}

// GetField reads field i of record r.
func (h *Heap) GetField(r Ref, i int) (Value, error) {
	o, err := h.GetKind(r, ObjRecord)
	if err != nil {
		return Value{}, err
	}
	if i < 0 || i >= len(o.Fields) {
		return Value{}, fmt.Errorf("%w: field %d of %d", ErrFieldOOB, i, len(o.Fields))
	}
	return o.Fields[i], nil
}

// SetField writes field i of record r.
func (h *Heap) SetField(r Ref, i int, v Value) error {
	o, err := h.GetKind(r, ObjRecord)
	if err != nil {
		return err
	}
	if i < 0 || i >= len(o.Fields) {
		return fmt.Errorf("%w: field %d of %d", ErrFieldOOB, i, len(o.Fields))
	}
	o.Fields[i] = v
	return nil
}

// ArrLen returns the length of any array object.
func (h *Heap) ArrLen(r Ref) (int, error) {
	o, err := h.Get(r)
	if err != nil {
		return 0, err
	}
	switch o.Kind {
	case ObjIntArr:
		return len(o.Ints), nil
	case ObjFloatArr:
		return len(o.Floats), nil
	case ObjRefArr:
		return len(o.Refs), nil
	case ObjString:
		return len(o.Str), nil
	default:
		return 0, fmt.Errorf("%w: %s is not an array", ErrKindMismatch, o.Kind)
	}
}

// ArrGet reads element i of array r.
func (h *Heap) ArrGet(r Ref, i int) (Value, error) {
	o, err := h.Get(r)
	if err != nil {
		return Value{}, err
	}
	switch o.Kind {
	case ObjIntArr:
		if i < 0 || i >= len(o.Ints) {
			return Value{}, fmt.Errorf("%w: %d of %d", ErrIndexOOB, i, len(o.Ints))
		}
		return IntVal(o.Ints[i]), nil
	case ObjFloatArr:
		if i < 0 || i >= len(o.Floats) {
			return Value{}, fmt.Errorf("%w: %d of %d", ErrIndexOOB, i, len(o.Floats))
		}
		return FloatVal(o.Floats[i]), nil
	case ObjRefArr:
		if i < 0 || i >= len(o.Refs) {
			return Value{}, fmt.Errorf("%w: %d of %d", ErrIndexOOB, i, len(o.Refs))
		}
		return RefVal(o.Refs[i]), nil
	case ObjString:
		if i < 0 || i >= len(o.Str) {
			return Value{}, fmt.Errorf("%w: %d of %d", ErrIndexOOB, i, len(o.Str))
		}
		return IntVal(int64(o.Str[i])), nil
	default:
		return Value{}, fmt.Errorf("%w: %s is not an array", ErrKindMismatch, o.Kind)
	}
}

// ArrSet writes element i of array r, coercing v to the element type.
func (h *Heap) ArrSet(r Ref, i int, v Value) error {
	o, err := h.Get(r)
	if err != nil {
		return err
	}
	switch o.Kind {
	case ObjIntArr:
		if i < 0 || i >= len(o.Ints) {
			return fmt.Errorf("%w: %d of %d", ErrIndexOOB, i, len(o.Ints))
		}
		if v.Kind != KindInt {
			return fmt.Errorf("%w: storing %s into int[]", ErrKindMismatch, v.Kind)
		}
		o.Ints[i] = v.I
	case ObjFloatArr:
		if i < 0 || i >= len(o.Floats) {
			return fmt.Errorf("%w: %d of %d", ErrIndexOOB, i, len(o.Floats))
		}
		if v.Kind != KindFloat {
			return fmt.Errorf("%w: storing %s into float[]", ErrKindMismatch, v.Kind)
		}
		o.Floats[i] = v.F
	case ObjRefArr:
		if i < 0 || i >= len(o.Refs) {
			return fmt.Errorf("%w: %d of %d", ErrIndexOOB, i, len(o.Refs))
		}
		if v.Kind != KindRef {
			return fmt.Errorf("%w: storing %s into ref[]", ErrKindMismatch, v.Kind)
		}
		o.Refs[i] = v.R
	default:
		return fmt.Errorf("%w: %s is not a writable array", ErrKindMismatch, o.Kind)
	}
	return nil
}

// RegisterSoftRef records that holder softly references referent.
func (h *Heap) RegisterSoftRef(holder, referent Ref) { h.softRefs[holder] = referent }

// RegisterWeakRef records that holder weakly references referent.
func (h *Heap) RegisterWeakRef(holder, referent Ref) { h.weakRefs[holder] = referent }

// SoftReferent returns the (possibly cleared) referent of a soft reference.
func (h *Heap) SoftReferent(holder Ref) (Ref, bool) {
	r, ok := h.softRefs[holder]
	return r, ok
}

// WeakReferent returns the (possibly cleared) referent of a weak reference.
func (h *Heap) WeakReferent(holder Ref) (Ref, bool) {
	r, ok := h.weakRefs[holder]
	return r, ok
}

// GC runs a mark-sweep collection. roots must invoke the callback for every
// strong root reference (thread stacks, statics, monitor-held objects).
// Records whose Finalize flag is set are not freed on their first collection:
// they are queued for finalization (deterministically, in ascending ref
// order) and freed on a later cycle, mirroring Java's finalizer contract.
// It returns the number of objects freed.
func (h *Heap) GC(roots func(mark func(Ref))) int {
	h.stats.GCs++
	var stack []Ref
	mark := func(r Ref) {
		if r == NullRef || int(r) >= len(h.slots) {
			return
		}
		o := h.slots[r]
		if o == nil || o.Mark {
			return
		}
		o.Mark = true
		stack = append(stack, r)
	}
	roots(mark)
	if h.SoftAsStrong {
		for holder, referent := range h.softRefs {
			if h.isMarkedOrMarkable(holder) {
				mark(referent)
			}
		}
	}
	// Trace.
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		o := h.slots[r]
		switch o.Kind {
		case ObjRecord:
			for _, f := range o.Fields {
				if f.Kind == KindRef {
					mark(f.R)
				}
			}
		case ObjRefArr:
			for _, rr := range o.Refs {
				mark(rr)
			}
		}
		if h.SoftAsStrong {
			if ref, ok := h.softRefs[r]; ok {
				mark(ref)
			}
		}
	}
	// Unreached-but-finalizable records survive one cycle via the queue.
	var pendingFinal []Ref
	for i := 1; i < len(h.slots); i++ {
		o := h.slots[i]
		if o == nil || o.Mark {
			continue
		}
		if o.Kind == ObjRecord && o.Finalize {
			pendingFinal = append(pendingFinal, Ref(i))
		}
	}
	sort.Slice(pendingFinal, func(a, b int) bool { return pendingFinal[a] < pendingFinal[b] })
	for _, r := range pendingFinal {
		o := h.slots[r]
		o.Finalize = false
		h.finalizeQueue = append(h.finalizeQueue, r)
		h.stats.Finalized++
		// Keep the object (and everything it references) alive until the
		// finalizer has run: re-mark transitively.
		o.Mark = true
		stack = append(stack[:0], r)
		for len(stack) > 0 {
			rr := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			oo := h.slots[rr]
			switch oo.Kind {
			case ObjRecord:
				for _, f := range oo.Fields {
					if f.Kind == KindRef {
						mark(f.R)
					}
				}
			case ObjRefArr:
				for _, r2 := range oo.Refs {
					mark(r2)
				}
			}
		}
	}
	// Clear dead soft/weak reference entries and referents.
	for holder, referent := range h.softRefs {
		if !h.isLiveMarked(holder) {
			delete(h.softRefs, holder)
			continue
		}
		if !h.SoftAsStrong && !h.isLiveMarked(referent) {
			h.softRefs[holder] = NullRef
		}
	}
	for holder, referent := range h.weakRefs {
		if !h.isLiveMarked(holder) {
			delete(h.weakRefs, holder)
			continue
		}
		if !h.isLiveMarked(referent) {
			h.weakRefs[holder] = NullRef
		}
	}
	// Sweep.
	freed := 0
	for i := 1; i < len(h.slots); i++ {
		o := h.slots[i]
		if o == nil {
			continue
		}
		if o.Mark {
			o.Mark = false
			continue
		}
		h.slots[i] = nil
		h.free = append(h.free, Ref(i))
		freed++
	}
	h.stats.Frees += uint64(freed)
	h.stats.LiveAtLast = uint64(h.Size())
	if h.gcThreshold > 0 && h.Size() >= h.gcThreshold {
		h.gcThreshold *= 2
	}
	return freed
}

func (h *Heap) isMarkedOrMarkable(r Ref) bool {
	return r != NullRef && int(r) < len(h.slots) && h.slots[r] != nil && h.slots[r].Mark
}

func (h *Heap) isLiveMarked(r Ref) bool {
	return r != NullRef && int(r) < len(h.slots) && h.slots[r] != nil && h.slots[r].Mark
}

// DrainFinalizeQueue returns and clears the queue of records awaiting
// finalization, in the deterministic order they were enqueued.
func (h *Heap) DrainFinalizeQueue() []Ref {
	q := h.finalizeQueue
	h.finalizeQueue = nil
	return q
}
