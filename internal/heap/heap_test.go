package heap

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestAllocAndAccess(t *testing.T) {
	h := New()
	rec, err := h.AllocRecord(3, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetField(rec, 0, IntVal(7)); err != nil {
		t.Fatal(err)
	}
	if err := h.SetField(rec, 1, FloatVal(2.5)); err != nil {
		t.Fatal(err)
	}
	v, err := h.GetField(rec, 0)
	if err != nil || v.I != 7 {
		t.Fatalf("field 0 = %v (%v)", v, err)
	}
	if _, err := h.GetField(rec, 5); !errors.Is(err, ErrFieldOOB) {
		t.Fatalf("want field OOB, got %v", err)
	}
	if _, err := h.Get(NullRef); !errors.Is(err, ErrNullRef) {
		t.Fatalf("want null error, got %v", err)
	}
	if _, err := h.Get(Ref(9999)); !errors.Is(err, ErrBadRef) {
		t.Fatalf("want bad ref, got %v", err)
	}
}

func TestArrays(t *testing.T) {
	h := New()
	ia, _ := h.AllocIntArr(4)
	fa, _ := h.AllocFloatArr(2)
	ra, _ := h.AllocRefArr(2)
	if err := h.ArrSet(ia, 2, IntVal(9)); err != nil {
		t.Fatal(err)
	}
	if v, _ := h.ArrGet(ia, 2); v.I != 9 {
		t.Fatalf("ia[2] = %v", v)
	}
	if err := h.ArrSet(ia, 2, FloatVal(1)); !errors.Is(err, ErrKindMismatch) {
		t.Fatalf("want kind mismatch, got %v", err)
	}
	if _, err := h.ArrGet(fa, 5); !errors.Is(err, ErrIndexOOB) {
		t.Fatalf("want OOB, got %v", err)
	}
	if err := h.ArrSet(ra, 0, RefVal(ia)); err != nil {
		t.Fatal(err)
	}
	if n, _ := h.ArrLen(ra); n != 2 {
		t.Fatalf("len = %d", n)
	}
	if _, err := h.AllocIntArr(-1); !errors.Is(err, ErrNegativeSize) {
		t.Fatalf("want negative size, got %v", err)
	}
}

func TestStrings(t *testing.T) {
	h := New()
	s, _ := h.AllocString("hello")
	got, err := h.StringAt(s)
	if err != nil || got != "hello" {
		t.Fatalf("string = %q (%v)", got, err)
	}
	if n, _ := h.ArrLen(s); n != 5 {
		t.Fatalf("len = %d", n)
	}
	if v, _ := h.ArrGet(s, 1); v.I != 'e' {
		t.Fatalf("s[1] = %v", v)
	}
}

func TestGCBasic(t *testing.T) {
	h := New()
	live, _ := h.AllocRecord(0, 1, false)
	child, _ := h.AllocIntArr(10)
	_ = h.SetField(live, 0, RefVal(child))
	for i := 0; i < 100; i++ {
		if _, err := h.AllocRecord(0, 0, false); err != nil {
			t.Fatal(err)
		}
	}
	freed := h.GC(func(mark func(Ref)) { mark(live) })
	if freed != 100 {
		t.Fatalf("freed %d, want 100", freed)
	}
	if _, err := h.Get(child); err != nil {
		t.Fatalf("reachable child collected: %v", err)
	}
	if h.Size() != 2 {
		t.Fatalf("size = %d, want 2", h.Size())
	}
}

func TestGCSlotReuse(t *testing.T) {
	h := New()
	r1, _ := h.AllocRecord(0, 0, false)
	h.GC(func(func(Ref)) {})
	r2, _ := h.AllocRecord(0, 0, false)
	if r1 != r2 {
		t.Fatalf("slot not recycled: %v then %v", r1, r2)
	}
}

func TestFinalizerQueueDeterministic(t *testing.T) {
	h := New()
	var refs []Ref
	for i := 0; i < 5; i++ {
		r, _ := h.AllocRecord(1, 0, true)
		refs = append(refs, r)
	}
	h.GC(func(func(Ref)) {})
	q := h.DrainFinalizeQueue()
	if len(q) != 5 {
		t.Fatalf("queue = %d, want 5", len(q))
	}
	for i := 1; i < len(q); i++ {
		if q[i] <= q[i-1] {
			t.Fatalf("queue not in ascending ref order: %v", q)
		}
	}
	// Finalizable objects survive the first collection...
	for _, r := range refs {
		if _, err := h.Get(r); err != nil {
			t.Fatalf("finalizable object collected early: %v", err)
		}
	}
	// ...and are freed on the next (finalizers have notionally run).
	h.GC(func(func(Ref)) {})
	for _, r := range refs {
		if _, err := h.Get(r); err == nil {
			t.Fatalf("object %v not freed after finalization", r)
		}
	}
}

func TestSoftRefsStrongInFTMode(t *testing.T) {
	h := New()
	h.SoftAsStrong = true
	holder, _ := h.AllocRecord(0, 0, false)
	obj, _ := h.AllocIntArr(3)
	h.RegisterSoftRef(holder, obj)
	h.GC(func(mark func(Ref)) { mark(holder) })
	if _, err := h.Get(obj); err != nil {
		t.Fatalf("soft referent collected in FT mode: %v", err)
	}
	if r, ok := h.SoftReferent(holder); !ok || r != obj {
		t.Fatalf("soft ref lost: %v %v", r, ok)
	}
}

func TestSoftRefsClearedWhenCollectable(t *testing.T) {
	h := New()
	h.SoftAsStrong = false
	holder, _ := h.AllocRecord(0, 0, false)
	obj, _ := h.AllocIntArr(3)
	h.RegisterSoftRef(holder, obj)
	h.GC(func(mark func(Ref)) { mark(holder) })
	if r, ok := h.SoftReferent(holder); !ok || r != NullRef {
		t.Fatalf("soft ref should be cleared: %v %v", r, ok)
	}
}

func TestWeakRefsCleared(t *testing.T) {
	h := New()
	h.SoftAsStrong = true // weak refs clear regardless of FT mode
	holder, _ := h.AllocRecord(0, 0, false)
	obj, _ := h.AllocIntArr(3)
	h.RegisterWeakRef(holder, obj)
	h.GC(func(mark func(Ref)) { mark(holder) })
	if r, ok := h.WeakReferent(holder); !ok || r != NullRef {
		t.Fatalf("weak ref should be cleared: %v %v", r, ok)
	}
}

func TestMaxSlots(t *testing.T) {
	h := New(WithMaxSlots(3))
	for i := 0; i < 3; i++ {
		if _, err := h.AllocIntArr(1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := h.AllocIntArr(1); !errors.Is(err, ErrHeapExhausted) {
		t.Fatalf("want exhaustion, got %v", err)
	}
}

// Property: a chain of records is fully retained by GC from its head, and
// fully collected without it, for any chain length.
func TestGCChainProperty(t *testing.T) {
	prop := func(rawLen uint8) bool {
		n := int(rawLen%50) + 1
		h := New()
		refs := make([]Ref, n)
		for i := range refs {
			refs[i], _ = h.AllocRecord(0, 1, false)
		}
		for i := 0; i+1 < n; i++ {
			if err := h.SetField(refs[i], 0, RefVal(refs[i+1])); err != nil {
				return false
			}
		}
		h.GC(func(mark func(Ref)) { mark(refs[0]) })
		if h.Size() != n {
			return false
		}
		h.GC(func(func(Ref)) {})
		return h.Size() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: values round-trip through array storage for any int64/float64.
func TestArrayStoreProperty(t *testing.T) {
	h := New()
	ia, _ := h.AllocIntArr(1)
	fa, _ := h.AllocFloatArr(1)
	propInt := func(v int64) bool {
		if err := h.ArrSet(ia, 0, IntVal(v)); err != nil {
			return false
		}
		got, err := h.ArrGet(ia, 0)
		return err == nil && got.I == v
	}
	propFloat := func(v float64) bool {
		if err := h.ArrSet(fa, 0, FloatVal(v)); err != nil {
			return false
		}
		got, err := h.ArrGet(fa, 0)
		return err == nil && (got.F == v || (v != v && got.F != got.F)) // NaN-safe
	}
	if err := quick.Check(propInt, nil); err != nil {
		t.Fatal(err)
	}
	if err := quick.Check(propFloat, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValueEqualProperty(t *testing.T) {
	prop := func(a, b int64) bool {
		va, vb := IntVal(a), IntVal(b)
		return va.Equal(vb) == (a == b) && va.Equal(va)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
	if IntVal(1).Equal(FloatVal(1)) {
		t.Fatal("cross-kind equality")
	}
}

func TestGCCollectsCycles(t *testing.T) {
	h := New()
	// Two records referencing each other, unreachable from any root.
	a, _ := h.AllocRecord(0, 1, false)
	b, _ := h.AllocRecord(0, 1, false)
	_ = h.SetField(a, 0, RefVal(b))
	_ = h.SetField(b, 0, RefVal(a))
	if freed := h.GC(func(func(Ref)) {}); freed != 2 {
		t.Fatalf("freed %d, want the whole cycle (2)", freed)
	}
	// A rooted cycle survives.
	c, _ := h.AllocRecord(0, 1, false)
	d, _ := h.AllocRecord(0, 1, false)
	_ = h.SetField(c, 0, RefVal(d))
	_ = h.SetField(d, 0, RefVal(c))
	if freed := h.GC(func(mark func(Ref)) { mark(c) }); freed != 0 {
		t.Fatalf("freed %d from a live cycle", freed)
	}
}

func TestGCRefArrayTracing(t *testing.T) {
	h := New()
	arr, _ := h.AllocRefArr(3)
	child, _ := h.AllocString("kept alive through the array")
	_ = h.ArrSet(arr, 1, RefVal(child))
	h.GC(func(mark func(Ref)) { mark(arr) })
	if _, err := h.StringAt(child); err != nil {
		t.Fatalf("array element collected: %v", err)
	}
}

func TestAutoGCThresholdDoubles(t *testing.T) {
	h := New(WithGCThreshold(10))
	var live []Ref
	for i := 0; i < 10; i++ {
		r, _ := h.AllocRecord(0, 0, false)
		live = append(live, r)
	}
	if !h.NeedsGC() {
		t.Fatal("threshold not reached")
	}
	h.GC(func(mark func(Ref)) {
		for _, r := range live {
			mark(r)
		}
	})
	// Everything stayed live, so the threshold must have doubled to avoid
	// thrashing.
	if h.NeedsGC() {
		t.Fatal("threshold should have grown after a full-live collection")
	}
}
