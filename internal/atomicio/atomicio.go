// Package atomicio provides crash-safe file writes. A bare os.WriteFile
// that is interrupted (process kill, disk full) can leave a truncated file
// behind under the final name — for bench JSON, sweep traces, and captured
// .ftlog event logs that truncation is indistinguishable from a complete
// artifact until something tries to parse it. WriteFile instead writes to a
// temporary file in the destination directory and renames it into place;
// rename within a directory is atomic on POSIX, so a reader observes either
// the old contents or the complete new contents, never a prefix.
package atomicio

import (
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with data. The temporary file is
// created in path's directory (rename does not cross filesystems) and is
// removed on any failure.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	_, err = tmp.Write(data)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		// CreateTemp uses 0600; apply the caller's requested mode.
		err = os.Chmod(tmpName, perm)
	}
	if err == nil {
		err = os.Rename(tmpName, path)
	}
	if err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}
