package atomicio

import (
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "out.json")

	if err := WriteFile(p, []byte("first"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := os.ReadFile(p)
	if err != nil || string(got) != "first" {
		t.Fatalf("read back %q, %v", got, err)
	}

	if err := WriteFile(p, []byte("second"), 0o644); err != nil {
		t.Fatalf("WriteFile replace: %v", err)
	}
	got, _ = os.ReadFile(p)
	if string(got) != "second" {
		t.Fatalf("after replace got %q", got)
	}

	// No temp files left behind.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "out.json" {
		t.Fatalf("directory not clean: %v", ents)
	}
}

func TestWriteFileFailureLeavesOldContents(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "sub", "out.json")
	// Parent directory missing: CreateTemp fails, nothing is created.
	if err := WriteFile(p, []byte("x"), 0o644); err == nil {
		t.Fatal("expected error writing into missing directory")
	}
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Fatalf("file should not exist, stat err=%v", err)
	}
}
