package ftvm

// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//	BenchmarkAblationIntervals  — plain lock records vs DejaVu-style logical
//	                              interval compression (§6), on the two most
//	                              lock-intensive workloads;
//	BenchmarkAblationFlushBatch — log batching size vs communication and
//	                              output-commit pessimism;
//	BenchmarkAblationNetwork    — the same workload with and without the
//	                              simulated testbed link (how much of the
//	                              replication cost is communication).

import (
	"testing"
	"time"

	"repro/internal/programs"
)

func BenchmarkAblationIntervals(b *testing.B) {
	for _, name := range []string{"db", "mtrt"} {
		prog, err := programs.Compile(name, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range []Mode{ModeLock, ModeLockInterval} {
			b.Run(name+"/"+mode.String(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := RunReplicated(prog, mode, Options{
						EnvSeed:   20030622,
						NetPerMsg: 150 * time.Microsecond,
						NetPerKB:  450 * time.Microsecond,
					})
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(res.Primary.RecordsLogged), "records")
					b.ReportMetric(float64(res.Primary.BytesSent), "bytes")
				}
			})
		}
	}
}

func BenchmarkAblationFlushBatch(b *testing.B) {
	prog, err := programs.Compile("db", 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, batch := range []int{32, 512, 4096} {
		b.Run(map[int]string{32: "batch32", 512: "batch512", 4096: "batch4096"}[batch], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := RunReplicated(prog, ModeLock, Options{
					EnvSeed:    20030622,
					FlushEvery: batch,
					NetPerMsg:  150 * time.Microsecond,
					NetPerKB:   450 * time.Microsecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Primary.FramesSent), "frames")
				b.ReportMetric(res.Primary.Communication.Seconds(), "comm-s")
				b.ReportMetric(res.Primary.Pessimism.Seconds(), "pessim-s")
			}
		})
	}
}

func BenchmarkAblationNetwork(b *testing.B) {
	prog, err := programs.Compile("jess", 1)
	if err != nil {
		b.Fatal(err)
	}
	cfgs := []struct {
		name   string
		perMsg time.Duration
		perKB  time.Duration
	}{
		{"pipe", 0, 0},
		{"lan2003", 150 * time.Microsecond, 450 * time.Microsecond},
	}
	for _, c := range cfgs {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := RunReplicated(prog, ModeLock, Options{
					EnvSeed:   20030622,
					NetPerMsg: c.perMsg,
					NetPerKB:  c.perKB,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Primary.Communication.Seconds(), "comm-s")
			}
		})
	}
}
