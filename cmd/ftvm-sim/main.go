// Command ftvm-sim drives the deterministic simulation harness
// (internal/simtest): a complete primary/backup pair runs in one process on a
// virtual clock over a seeded simulated network, so hundreds of kill-point ×
// fault-schedule × seed combinations execute in seconds of wall time and
// every outcome — message timing included — is a pure function of the combo.
//
// Usage:
//
//	ftvm-sim                            # default sweep (>200 combos)
//	ftvm-sim -progs 8 -start 100 -nets 4 -v     # wider sweep
//	ftvm-sim -kills 1,2,3,5,8,13,21     # denser kill positions
//	ftvm-sim -trace sweep.txt           # write the deterministic trace
//	ftvm-sim -view                      # three-node view-change sweep
//	ftvm-sim -fleet                     # sharded-fleet kill x fault sweep
//	ftvm-sim -consensus                 # replicated-log (consensus backend) sweep
//	ftvm-sim -replay "prog=7,size=small,mode=sched,kill=12,deliver=1,fault=none@0,net=3,reorder=1/8"
//	ftvm-sim -replay "prog=3,size=small,mode=lock,kill1=4,d1=0,kill2=1,d2=0,fault=none@0,inject=1,net=5,reorder=1/8"
//	ftvm-sim -replay "seed=3,nodes=4,shards=8,clients=1000,ops=3,ka=3@250,kb=0@0,fault=ackdrop/13,inject=0"
//	ftvm-sim -replay "prog=1,size=small,mode=lock,who=leader,kill=5,deliver=1,part=0+0,inject=0,fault=none@0,eseed=1,net=1,reorder=1/8"
//
// With -view the sweep runs the three-node cluster (internal/simtest's view
// service): the first primary is killed, the promoted backup recruits the
// idle node through a snapshot + live-tail state transfer, and schedules kill
// the promoted primary too — the n−1 sequential-failure space.
//
// With -fleet the sweep runs the sharded multi-tenant fleet (internal/fleet)
// under its seeded open-loop load generator: node kills mid-window, faults on
// the replication hop, double kills, and stale-epoch probes, with every
// request checked for at-most-once execution against the model.
//
// With -consensus the sweep runs the VM over the consensus-backed replicated
// log (internal/consensus behind replication.CoordinationBackend): a
// three-replica Raft-style cluster commits every frame batch by majority
// before outputs release, and schedules kill the leader mid-commit, kill
// followers, open finite partition windows on the leader lane, inject
// stale-term frames, and vary the election seed to force contested votes.
//
// -replay dispatches on the key's parsed field structure
// (simtest.ClassifyReplayKey): a "clients" field means a fleet combo, "who"
// means a consensus combo, "kill1" means a view combo, and anything else is a
// pair combo. Unknown, ambiguous, or malformed fields are rejected up front
// with an error naming the offending field. Pair replays accept -capture to
// write the backup's replication log as a .ftlog for ftvm-debug.
//
// On any divergence the sweep prints the failing combo's trace line and the
// single -replay string that reproduces it; exit status is non-zero.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/atomicio"
	"repro/internal/fuzzgen"
	"repro/internal/simtest"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ftvm-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		replay   = flag.String("replay", "", "replay one combo from its key string and exit")
		progs    = flag.Int("progs", 4, "number of generated-program seeds to sweep")
		start    = flag.Uint64("start", 1, "first program seed")
		sizeName = flag.String("size", "small", "program size tier: small, medium, large")
		kills    = flag.String("kills", "", "comma-separated kill positions in frame sends (default 1,3,8,20)")
		nets     = flag.Int("nets", 2, "number of network seeds per schedule")
		tracePth = flag.String("trace", "", "write the full deterministic trace to this file")
		verbose  = flag.Bool("v", false, "print every combo's trace line")
		view     = flag.Bool("view", false, "sweep the three-node view-change cluster instead of the pair")
		fleetSw  = flag.Bool("fleet", false, "sweep the sharded multi-tenant fleet instead of the pair")
		clients  = flag.Int("clients", 1000, "clients per fleet combo (with -fleet)")
		consens  = flag.Bool("consensus", false, "sweep the consensus-backed replicated log instead of the pair")
		capture  = flag.String("capture", "", "with -replay of a pair combo: write the backup's replication log to this .ftlog file for ftvm-debug")
	)
	flag.Parse()

	if *replay != "" {
		return runReplay(*replay, *capture)
	}
	if *capture != "" {
		return fmt.Errorf("-capture requires -replay with a pair combo key")
	}

	size, err := fuzzgen.SizeByName(*sizeName)
	if err != nil {
		return err
	}
	var progSeeds []uint64
	for i := 0; i < *progs; i++ {
		progSeeds = append(progSeeds, *start+uint64(i))
	}
	var netSeeds []int64
	for i := 0; i < *nets; i++ {
		netSeeds = append(netSeeds, int64(i+1))
	}
	var killSends []int
	if *kills != "" {
		for _, f := range strings.Split(*kills, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return fmt.Errorf("bad -kills entry %q: %w", f, err)
			}
			killSends = append(killSends, n)
		}
	}

	var logf func(string)
	if *verbose {
		logf = func(line string) { fmt.Println(line) }
	}

	var (
		combos   int
		elapsed  time.Duration
		trace    []string
		failures []string
	)
	if *fleetSw {
		cfg := simtest.FleetSweepConfig{Seeds: progSeeds, Clients: *clients}
		res := simtest.RunFleetSweep(cfg, logf)
		combos, elapsed, trace = res.Combos, res.Elapsed, res.Trace
		for _, f := range res.Failures {
			failures = append(failures, fmt.Sprintf("FAIL %s\n  replay: %s", f.TraceLine(), f.ReplayCommand()))
		}
	} else if *consens {
		cfg := simtest.ConsensusSweepConfig{
			Size: size, ProgSeeds: progSeeds, NetSeeds: netSeeds, KillSends: killSends,
		}
		res := simtest.RunConsensusSweep(cfg, logf)
		combos, elapsed, trace = res.Combos, res.Elapsed, res.Trace
		for _, f := range res.Failures {
			failures = append(failures, fmt.Sprintf("FAIL %s\n  replay: %s", f.TraceLine(), f.ReplayCommand()))
		}
	} else if *view {
		cfg := simtest.ViewSweepConfig{
			Size: size, ProgSeeds: progSeeds, NetSeeds: netSeeds, Kill1Sends: killSends,
		}
		res := simtest.RunViewSweep(cfg, logf)
		combos, elapsed, trace = res.Combos, res.Elapsed, res.Trace
		for _, f := range res.Failures {
			failures = append(failures, fmt.Sprintf("FAIL %s\n  replay: %s", f.TraceLine(), f.ReplayCommand()))
		}
	} else {
		cfg := simtest.SweepConfig{
			Size: size, ProgSeeds: progSeeds, NetSeeds: netSeeds, KillSends: killSends,
		}
		res := simtest.RunSweep(cfg, logf)
		combos, elapsed, trace = res.Combos, res.Elapsed, res.Trace
		for _, f := range res.Failures {
			failures = append(failures, fmt.Sprintf("FAIL %s\n  replay: %s", f.TraceLine(), f.ReplayCommand()))
		}
	}

	if *tracePth != "" {
		data := strings.Join(trace, "\n") + "\n"
		if err := atomicio.WriteFile(*tracePth, []byte(data), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("swept %d combos (%d program seeds, %d net seeds, size %s) in %v wall: %d failures\n",
		combos, *progs, *nets, size, elapsed.Round(time.Millisecond), len(failures))
	for _, f := range failures {
		fmt.Println(f)
	}
	if n := len(failures); n > 0 {
		return fmt.Errorf("%d of %d combos diverged", n, combos)
	}
	return nil
}

func runReplay(key, capture string) error {
	kind, kerr := simtest.ClassifyReplayKey(key)
	if kerr != nil {
		return kerr
	}
	if capture != "" && kind != simtest.ReplayPair {
		return fmt.Errorf("-capture only applies to pair combos, not %s keys", kind)
	}
	var (
		line, detail string
		err          error
		ref, console []string
	)
	switch kind {
	case simtest.ReplayFleet:
		cb, perr := simtest.ParseFleetCombo(key)
		if perr != nil {
			return perr
		}
		out := simtest.RunFleetCombo(cb)
		fmt.Println(out.TraceLine())
		if out.Err != nil {
			return out.Err
		}
		if out.Detail != "" {
			return fmt.Errorf("invariant failure: %s", out.Detail)
		}
		return nil
	case simtest.ReplayConsensus:
		cb, perr := simtest.ParseConsensusCombo(key)
		if perr != nil {
			return perr
		}
		out := simtest.RunConsensusCombo(cb, nil, nil)
		line, detail, err, ref, console = out.TraceLine(), out.Detail, out.Err, out.Ref, out.Console
	case simtest.ReplayView:
		cb, perr := simtest.ParseViewCombo(key)
		if perr != nil {
			return perr
		}
		out := simtest.RunViewCombo(cb, nil, nil)
		line, detail, err, ref, console = out.TraceLine(), out.Detail, out.Err, out.Ref, out.Console
	default:
		cb, perr := simtest.ParseCombo(key)
		if perr != nil {
			return perr
		}
		cb.Capture = capture
		out := simtest.RunCombo(cb, nil, nil)
		line, detail, err, ref, console = out.TraceLine(), out.Detail, out.Err, out.Ref, out.Console
	}
	fmt.Println(line)
	if err != nil {
		return err
	}
	if detail != "" {
		fmt.Println("reference console:")
		for _, ln := range ref {
			fmt.Printf("  %s\n", ln)
		}
		fmt.Println("simulated console:")
		for _, ln := range console {
			fmt.Printf("  %s\n", ln)
		}
		return fmt.Errorf("divergence: %s", detail)
	}
	return nil
}
