// Command ftvm-sim drives the deterministic simulation harness
// (internal/simtest): a complete primary/backup pair runs in one process on a
// virtual clock over a seeded simulated network, so hundreds of kill-point ×
// fault-schedule × seed combinations execute in seconds of wall time and
// every outcome — message timing included — is a pure function of the combo.
//
// Usage:
//
//	ftvm-sim                            # default sweep (>200 combos)
//	ftvm-sim -progs 8 -start 100 -nets 4 -v     # wider sweep
//	ftvm-sim -kills 1,2,3,5,8,13,21     # denser kill positions
//	ftvm-sim -trace sweep.txt           # write the deterministic trace
//	ftvm-sim -replay "prog=7,size=small,mode=sched,kill=12,deliver=1,fault=none@0,net=3,reorder=1/8"
//
// On any divergence the sweep prints the failing combo's trace line and the
// single -replay string that reproduces it; exit status is non-zero.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/fuzzgen"
	"repro/internal/simtest"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ftvm-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		replay   = flag.String("replay", "", "replay one combo from its key string and exit")
		progs    = flag.Int("progs", 4, "number of generated-program seeds to sweep")
		start    = flag.Uint64("start", 1, "first program seed")
		sizeName = flag.String("size", "small", "program size tier: small, medium, large")
		kills    = flag.String("kills", "", "comma-separated kill positions in frame sends (default 1,3,8,20)")
		nets     = flag.Int("nets", 2, "number of network seeds per schedule")
		tracePth = flag.String("trace", "", "write the full deterministic trace to this file")
		verbose  = flag.Bool("v", false, "print every combo's trace line")
	)
	flag.Parse()

	if *replay != "" {
		return runReplay(*replay)
	}

	size, err := fuzzgen.SizeByName(*sizeName)
	if err != nil {
		return err
	}
	cfg := simtest.SweepConfig{Size: size}
	for i := 0; i < *progs; i++ {
		cfg.ProgSeeds = append(cfg.ProgSeeds, *start+uint64(i))
	}
	for i := 0; i < *nets; i++ {
		cfg.NetSeeds = append(cfg.NetSeeds, int64(i+1))
	}
	if *kills != "" {
		for _, f := range strings.Split(*kills, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return fmt.Errorf("bad -kills entry %q: %w", f, err)
			}
			cfg.KillSends = append(cfg.KillSends, n)
		}
	}

	var logf func(string)
	if *verbose {
		logf = func(line string) { fmt.Println(line) }
	}
	res := simtest.RunSweep(cfg, logf)

	if *tracePth != "" {
		data := strings.Join(res.Trace, "\n") + "\n"
		if err := os.WriteFile(*tracePth, []byte(data), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("swept %d combos (%d program seeds, %d net seeds, size %s) in %v wall: %d failures\n",
		res.Combos, *progs, *nets, size, res.Elapsed.Round(time.Millisecond), len(res.Failures))
	for _, f := range res.Failures {
		fmt.Printf("FAIL %s\n  replay: %s\n", f.TraceLine(), f.ReplayCommand())
	}
	if n := len(res.Failures); n > 0 {
		return fmt.Errorf("%d of %d combos diverged", n, res.Combos)
	}
	return nil
}

func runReplay(key string) error {
	cb, err := simtest.ParseCombo(key)
	if err != nil {
		return err
	}
	out := simtest.RunCombo(cb, nil, nil)
	fmt.Println(out.TraceLine())
	if out.Err != nil {
		return out.Err
	}
	if out.Detail != "" {
		fmt.Println("reference console:")
		for _, ln := range out.Ref {
			fmt.Printf("  %s\n", ln)
		}
		fmt.Println("simulated console:")
		for _, ln := range out.Console {
			fmt.Printf("  %s\n", ln)
		}
		return fmt.Errorf("divergence: %s", out.Detail)
	}
	return nil
}
