// Command ftvm-fleet runs the sharded multi-tenant serving fleet
// (internal/fleet) under its seeded open-loop load generator
// (internal/fleet/loadgen) on a virtual clock: a million simulated client
// sessions — arrivals, retries, node kills, promotion windows, recruitment
// state transfers — execute as one discrete-event simulation in seconds of
// wall time, and every number printed is a pure function of (config, seed).
//
// Usage:
//
//	ftvm-fleet                                   # 1M clients, one mid-window kill
//	ftvm-fleet -clients 100000 -kills n2@800ms   # smaller population
//	ftvm-fleet -fault ackdrop -fault-every 1000  # layer replication faults on top
//	ftvm-fleet -json BENCH_PR7.json              # write the benchmark record
//
// The run fails (non-zero exit) if the model verification finds any request
// executed other than exactly once, or if the failover blast radius reaches
// the killed nodes' share of the fleet.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/atomicio"
	"repro/internal/fleet"
	"repro/internal/fleet/loadgen"
	"repro/internal/simtest/clock"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ftvm-fleet:", err)
		os.Exit(1)
	}
}

// benchRecord is the JSON benchmark shape committed as BENCH_PR7.json.
type benchRecord struct {
	PR     int    `json:"pr"`
	Bench  string `json:"bench"`
	Method string `json:"method"`
	Config struct {
		Clients    int    `json:"clients"`
		OpsPer     int    `json:"ops_per_client"`
		Nodes      int    `json:"nodes"`
		Shards     int    `json:"shards"`
		Seed       uint64 `json:"seed"`
		WindowMS   int64  `json:"arrival_window_ms"`
		Kills      string `json:"kills"`
		Fault      string `json:"fault"`
		FaultEvery uint64 `json:"fault_every"`
	} `json:"config"`
	Requests        uint64  `json:"requests"`
	OKs             uint64  `json:"oks"`
	Retries         uint64  `json:"retries"`
	Silent          uint64  `json:"silent"`
	Unavailable     uint64  `json:"unavailable"`
	NotOwner        uint64  `json:"not_owner"`
	VirtualMS       float64 `json:"virtual_elapsed_ms"`
	Throughput      float64 `json:"throughput_ops_per_virtual_sec"`
	P50US           int64   `json:"p50_us"`
	P99US           int64   `json:"p99_us"`
	TenantsActive   int     `json:"tenants_active"`
	TenantsBlasted  int     `json:"tenants_blasted"`
	BlastRadius     float64 `json:"blast_radius"`
	BlastBound      float64 `json:"blast_bound_killed_share"`
	Executed        uint64  `json:"executed"`
	DupHits         uint64  `json:"dup_hits"`
	Resent          uint64  `json:"resent"`
	Promotions      uint64  `json:"promotions"`
	Transfers       uint64  `json:"transfers"`
	StaleFrames     uint64  `json:"stale_frames"`
	Checksum        string  `json:"checksum"`
	WallMS          int64   `json:"wall_ms"`
	SimSpeedup      float64 `json:"virtual_over_wall"`
	ModelVerified   bool    `json:"model_verified_at_most_once"`
	SampledVerified int     `json:"observations_verified"`
}

func run() error {
	var (
		clients  = flag.Int("clients", 1_000_000, "simulated client sessions")
		ops      = flag.Int("ops", 2, "requests per client session")
		nodes    = flag.Int("nodes", 8, "fleet node count")
		shards   = flag.Int("shards", 32, "shard count")
		seed     = flag.Uint64("seed", 1, "workload master seed")
		window   = flag.Duration("window", 2*time.Second, "client arrival window (virtual)")
		killSpec = flag.String("kills", "n2@800ms", "comma-separated node@offset kills; empty = none")
		fault    = flag.String("fault", "none", "replication fault kind: none, framedrop, ackdrop, replydrop")
		every    = flag.Uint64("fault-every", 0, "strike every Nth replication attempt (0 = never)")
		sample   = flag.Int("sample", 256, "verify observations from every Nth client")
		jsonPth  = flag.String("json", "", "write the benchmark record to this file")
	)
	flag.Parse()

	kills, err := parseKills(*killSpec)
	if err != nil {
		return err
	}
	nodeNames := make([]string, *nodes)
	for i := range nodeNames {
		nodeNames[i] = fmt.Sprintf("n%d", i+1)
	}

	clk := clock.NewVirtual()
	defer clk.Watchdog(5 * time.Minute)()
	f, err := fleet.New(fleet.Config{
		Clock: clk, Nodes: nodeNames, Shards: *shards,
		Fault: *fault, FaultEvery: *every,
	})
	if err != nil {
		return err
	}

	wall0 := clock.Real.Now()
	clk.Attach()
	st, obs, err := loadgen.Run(f, clk, loadgen.Config{
		Clients:      *clients,
		OpsPerClient: *ops,
		Seed:         *seed,
		Window:       *window,
		Kills:        kills,
		SampleEvery:  *sample,
	})
	clk.Detach()
	wall := clock.Real.Since(wall0)
	if err != nil {
		return err
	}

	bound := float64(len(kills)) / float64(*nodes)
	fmt.Printf("fleet: %d clients x %d ops on %d nodes / %d shards, seed %d\n",
		st.Clients, *ops, *nodes, *shards, *seed)
	fmt.Printf("  oks %d / requests %d (retries %d, silent %d, unavailable %d, not-owner %d)\n",
		st.OKs, st.Requests, st.Retries, st.Silent, st.Unavailable, st.NotOwner)
	fmt.Printf("  virtual %v, wall %v (%.2fx), %.0f ops/virtual-sec\n",
		st.Elapsed.Round(time.Millisecond), wall.Round(time.Millisecond),
		st.Elapsed.Seconds()/wall.Seconds(), st.Throughput)
	fmt.Printf("  latency p50 %v p99 %v\n", st.P50, st.P99)
	fmt.Printf("  blast %d/%d tenants (%.4f; killed share %.4f)\n",
		st.TenantsBlasted, st.TenantsActive, st.BlastRadius, bound)
	fmt.Printf("  fleet: executed %d, dup hits %d, resent %d, promotions %d, transfers %d, stale frames %d\n",
		st.Fleet.Executed, st.Fleet.DupHits, st.Fleet.Resent,
		st.Fleet.Promotions, st.Fleet.Transfers, st.Fleet.StaleFrames)
	fmt.Printf("  checksum %016x, %d observations verified against the model\n", st.Checksum, len(obs))

	if st.Fleet.Executed < st.Requests {
		return fmt.Errorf("executed %d < requests %d: some request never ran", st.Fleet.Executed, st.Requests)
	}
	if len(kills) > 0 && st.BlastRadius >= bound {
		return fmt.Errorf("blast radius %.4f reached the killed nodes' share %.4f", st.BlastRadius, bound)
	}

	if *jsonPth != "" {
		var rec benchRecord
		rec.PR = 7
		rec.Bench = "sharded fleet under open-loop load with mid-window failover"
		rec.Method = "go run ./cmd/ftvm-fleet (virtual clock; deterministic per config+seed, wall_ms reporting only)"
		rec.Config.Clients = *clients
		rec.Config.OpsPer = *ops
		rec.Config.Nodes = *nodes
		rec.Config.Shards = *shards
		rec.Config.Seed = *seed
		rec.Config.WindowMS = int64(*window / time.Millisecond)
		rec.Config.Kills = *killSpec
		rec.Config.Fault = *fault
		rec.Config.FaultEvery = *every
		rec.Requests = st.Requests
		rec.OKs = st.OKs
		rec.Retries = st.Retries
		rec.Silent = st.Silent
		rec.Unavailable = st.Unavailable
		rec.NotOwner = st.NotOwner
		rec.VirtualMS = float64(st.Elapsed) / float64(time.Millisecond)
		rec.Throughput = st.Throughput
		rec.P50US = int64(st.P50 / time.Microsecond)
		rec.P99US = int64(st.P99 / time.Microsecond)
		rec.TenantsActive = st.TenantsActive
		rec.TenantsBlasted = st.TenantsBlasted
		rec.BlastRadius = st.BlastRadius
		rec.BlastBound = bound
		rec.Executed = st.Fleet.Executed
		rec.DupHits = st.Fleet.DupHits
		rec.Resent = st.Fleet.Resent
		rec.Promotions = st.Fleet.Promotions
		rec.Transfers = st.Fleet.Transfers
		rec.StaleFrames = st.Fleet.StaleFrames
		rec.Checksum = fmt.Sprintf("%016x", st.Checksum)
		rec.WallMS = wall.Milliseconds()
		if wall > 0 {
			rec.SimSpeedup = st.Elapsed.Seconds() / wall.Seconds()
		}
		rec.ModelVerified = true
		rec.SampledVerified = len(obs)
		data, err := json.MarshalIndent(&rec, "", "  ")
		if err != nil {
			return err
		}
		if err := atomicio.WriteFile(*jsonPth, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonPth)
	}
	return nil
}

// parseKills parses "n2@800ms,n5@1.2s" into the loadgen kill schedule.
func parseKills(spec string) ([]loadgen.Kill, error) {
	if spec == "" {
		return nil, nil
	}
	var kills []loadgen.Kill
	for _, part := range strings.Split(spec, ",") {
		node, at, ok := strings.Cut(strings.TrimSpace(part), "@")
		if !ok {
			return nil, fmt.Errorf("kill %q is not node@offset", part)
		}
		d, err := time.ParseDuration(at)
		if err != nil {
			return nil, fmt.Errorf("kill %q: %w", part, err)
		}
		kills = append(kills, loadgen.Kill{At: d, Node: node})
	}
	return kills, nil
}
