// Command ftvm-debug is a time-travel debugger over captured replication
// logs (.ftlog files, written by ftvm-run -capture, ftvm-sim -replay
// -capture, or any Options.CaptureLog run). A log plus the seeds in its
// header determines the execution completely — the paper's determinism
// contract — so the debugger can reconstruct the machine state at ANY global
// branch position by replaying from the nearest cached checkpoint, which
// makes stepping backwards exactly as cheap as stepping forwards.
//
// Usage:
//
//	ftvm-debug trace.ftlog                 # interactive inspection REPL
//	ftvm-debug -diff a.ftlog b.ftlog       # first diverging branch position
//	ftvm-debug -every 256 trace.ftlog      # denser checkpoints
//	ftvm-debug -dispatch switch trace.ftlog  # override the recorded engine
//
// The REPL reads commands from stdin (pipe a script for non-interactive
// use):
//
//	goto N      jump to global branch position N (g)
//	step [N]    forward N positions, default 1 (s)
//	rstep [N]   backward N positions, default 1 (r)
//	pos         print the current position
//	state       print the full deterministic state rendering
//	threads     print threads with their frame stacks
//	locks       print monitors: owner, entry count, queue, wait set
//	heap        print statics and heap occupancy
//	console     print the console written so far
//	checksum    print the state checksum (position fingerprint)
//	final       run to the end and print the final position
//	help        list commands
//	quit        exit (q; EOF also exits)
//
// Every command's output is a pure function of the log and the position, so
// the same script against the same log is byte-identical across runs,
// machines, and interpreter engines — that is what `make debug-smoke`
// asserts.
//
// -diff replays two captures and binary-searches inspection checksums for
// the first global branch position at which the machine states differ, then
// prints both renderings at that position. Divergence is persistent under
// deterministic replay, so checksum comparison is a valid bisection
// predicate.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	ftvm "repro"
	"repro/internal/debug"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ftvm-debug:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		diff     = flag.Bool("diff", false, "compare two logs: print the first diverging branch position")
		every    = flag.Uint64("every", debug.DefaultEvery, "checkpoint interval in global branches")
		dispatch = flag.String("dispatch", "", "override the recorded interpreter engine: threaded or switch")
	)
	flag.Parse()

	opts := debug.Options{Every: *every}
	if *dispatch != "" {
		d, err := ftvm.ParseDispatch(*dispatch)
		if err != nil {
			return err
		}
		opts.Dispatch, opts.OverrideDispatch = d, true
	}

	args := flag.Args()
	if *diff {
		if len(args) != 2 {
			return fmt.Errorf("-diff needs exactly two .ftlog paths, got %d", len(args))
		}
		return runDiff(args[0], args[1], opts)
	}
	if len(args) != 1 {
		return fmt.Errorf("usage: ftvm-debug [-every N] [-dispatch engine] trace.ftlog  (or -diff a.ftlog b.ftlog)")
	}
	return runREPL(args[0], opts)
}

func runDiff(pathA, pathB string, opts debug.Options) error {
	a, err := debug.Open(pathA, opts)
	if err != nil {
		return fmt.Errorf("%s: %w", pathA, err)
	}
	defer a.Close()
	b, err := debug.Open(pathB, opts)
	if err != nil {
		return fmt.Errorf("%s: %w", pathB, err)
	}
	defer b.Close()

	rep, err := debug.Diff(a, b)
	if err != nil {
		return err
	}
	if !rep.Diverged {
		fmt.Printf("identical: both replays agree at every position through %d\n", rep.Pos)
		return nil
	}
	fmt.Printf("diverged at position %d (finals %d vs %d)\n", rep.Pos, rep.FinalA, rep.FinalB)
	if rep.A != "" || rep.B != "" {
		fmt.Printf("--- %s @ %d\n%s", pathA, rep.Pos, rep.A)
		fmt.Printf("--- %s @ %d\n%s", pathB, rep.Pos, rep.B)
	}
	return fmt.Errorf("logs diverge")
}

func runREPL(path string, opts debug.Options) error {
	s, err := debug.Open(path, opts)
	if err != nil {
		return err
	}
	defer s.Close()

	hdr := s.Header()
	fmt.Printf("%s: mode=%s records=%d envseed=%d polseed=%d quantum=%d..%d\n",
		path, hdr.Mode, len(s.Records()), hdr.EnvSeed, hdr.PolicySeed, hdr.MinQuantum, hdr.MaxQuantum)
	fmt.Printf("position %d\n", s.Pos())

	in := bufio.NewScanner(os.Stdin)
	for in.Scan() {
		line := strings.TrimSpace(in.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		cmd, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		quit, err := runCommand(s, cmd, rest)
		if err != nil {
			fmt.Printf("error: %v\n", err)
		}
		if quit {
			break
		}
	}
	return in.Err()
}

func runCommand(s *debug.Session, cmd, rest string) (quit bool, err error) {
	switch cmd {
	case "quit", "exit", "q":
		return true, nil
	case "help":
		fmt.Print(helpText)
	case "pos":
		fmt.Printf("position %d\n", s.Pos())
	case "goto", "g":
		n, perr := strconv.ParseUint(rest, 0, 64)
		if perr != nil {
			return false, fmt.Errorf("goto needs a position: %v", perr)
		}
		if err := s.Goto(n); err != nil {
			return false, err
		}
		fmt.Printf("position %d\n", s.Pos())
	case "step", "s", "rstep", "r":
		n := uint64(1)
		if rest != "" {
			if n, err = strconv.ParseUint(rest, 0, 64); err != nil {
				return false, fmt.Errorf("%s needs a count: %v", cmd, err)
			}
		}
		target := s.Pos() + n
		if cmd == "rstep" || cmd == "r" {
			if n >= s.Pos() {
				target = 0
			} else {
				target = s.Pos() - n
			}
		}
		if err := s.Goto(target); err != nil {
			return false, err
		}
		fmt.Printf("position %d\n", s.Pos())
	case "state", "dump":
		fmt.Print(s.Inspect().Text)
	case "threads":
		printSection(s, "thread ", "  frame ")
	case "locks":
		printSection(s, "monitor ")
	case "heap":
		printSection(s, "statics=[", "heap ")
	case "console":
		printSection(s, "console ")
	case "checksum":
		rep := s.Inspect()
		fmt.Printf("position %d checksum %016x\n", rep.Branches, rep.Checksum)
	case "final":
		if err := s.RunToEnd(); err != nil {
			return false, err
		}
		pos, runErr, _ := s.Final()
		if runErr != nil {
			fmt.Printf("final position %d (run error: %v)\n", pos, runErr)
		} else {
			fmt.Printf("final position %d\n", pos)
		}
	default:
		return false, fmt.Errorf("unknown command %q (try help)", cmd)
	}
	return false, nil
}

// printSection prints the inspection lines carrying any of the prefixes, in
// rendering order, so filtered views stay deterministic too.
func printSection(s *debug.Session, prefixes ...string) {
	matched := false
	for _, line := range strings.SplitAfter(s.Inspect().Text, "\n") {
		for _, p := range prefixes {
			if strings.HasPrefix(line, p) {
				fmt.Print(line)
				matched = true
				break
			}
		}
	}
	if !matched {
		fmt.Println("(none)")
	}
}

const helpText = `commands:
  goto N      jump to global branch position N (g)
  step [N]    forward N positions, default 1 (s)
  rstep [N]   backward N positions, default 1 (r)
  pos         print the current position
  state       print the full deterministic state rendering (dump)
  threads     print threads with their frame stacks
  locks       print monitors: owner, entry count, queue, wait set
  heap        print statics and heap occupancy
  console     print the console written so far
  checksum    print the state checksum (position fingerprint)
  final       run to the end and print the final position
  quit        exit (q)
`
