// Command ftvm-run executes an FTVM program — minilang source (.ml), text
// assembly (.fta) or a binary image (.ftb) — standalone, replicated, or
// replicated with an injected primary failure and backup recovery.
//
// Usage:
//
//	ftvm-run prog.ml                         # standalone
//	ftvm-run -mode lock prog.ml              # primary-backup, lock replication
//	ftvm-run -mode sched -kill 500 prog.ml   # kill primary after 500 log records,
//	                                         # recover at the backup
//	ftvm-run -bench db -scale 1              # run a built-in benchmark workload
//	ftvm-run -stats prog.ml                  # print VM statistics
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	ftvm "repro"
	"repro/internal/bytecode"
	"repro/internal/minilang"
	"repro/internal/programs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ftvm-run:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		mode    = flag.String("mode", "", "replication mode: lock, sched or lockint (empty = standalone)")
		warm    = flag.Bool("warm", false, "use a warm backup (executes concurrently with the primary)")
		kill    = flag.Int("kill", 0, "kill the primary after this many logged records and recover (0 = run to completion)")
		bench   = flag.String("bench", "", "run a built-in benchmark instead of a file")
		scale   = flag.Int("scale", 1, "benchmark scale factor")
		seed    = flag.Int64("seed", 1, "environment seed")
		polSeed = flag.Int64("policy-seed", 1, "scheduling policy seed")
		stats   = flag.Bool("stats", false, "print VM statistics")
		quiet   = flag.Bool("quiet", false, "suppress program console output")
		maxIns  = flag.Uint64("max-instructions", 0, "abort after this many instructions (0 = unlimited)")
		capture = flag.String("capture", "", "write the replicated run's event log to this .ftlog path (requires -mode; input for ftvm-debug)")
	)
	flag.Parse()

	prog, err := loadProgram(*bench, *scale, flag.Args())
	if err != nil {
		return err
	}
	if *capture != "" && *mode == "" {
		return fmt.Errorf("-capture requires -mode (only replicated runs log events)")
	}
	if *capture != "" && *warm {
		return fmt.Errorf("-capture is not supported with -warm (the warm backup consumes records as they stream)")
	}
	opts := ftvm.Options{EnvSeed: *seed, PolicySeed: *polSeed, MaxInstructions: *maxIns, CaptureLog: *capture}

	var console []string
	var st ftvm.Stats
	var elapsed time.Duration
	switch {
	case *mode == "" && *kill == 0:
		res, err := ftvm.Run(prog, opts)
		if err != nil {
			return err
		}
		console, st, elapsed = res.Console, res.Stats, res.Elapsed
	case *mode != "":
		m, err := parseMode(*mode)
		if err != nil {
			return err
		}
		if *warm {
			var trigger ftvm.KillTrigger
			if *kill > 0 {
				trigger = ftvm.KillAfterRecords(*kill)
			}
			res, err := ftvm.RunWarmReplicated(prog, m, trigger, opts)
			if err != nil {
				return err
			}
			console, st, elapsed = res.Console, res.PrimaryStats, res.PrimaryElapsed
			fmt.Fprintf(os.Stderr, "warm backup (%s): outcome %v, killed=%v, backup executed %d instructions, caught up: %v\n",
				m, res.Outcome, res.Killed, res.Warm.Replay.VMStats.Instructions, res.Warm.CaughtUpAtClose)
			break
		}
		if *kill > 0 {
			res, err := ftvm.RunWithFailover(prog, m, ftvm.KillAfterRecords(*kill), opts)
			if err != nil {
				return err
			}
			console, st, elapsed = res.Console, res.Stats, res.Elapsed
			if res.Killed {
				fmt.Fprintf(os.Stderr, "primary killed after %d records; backup recovered in %v (replayed %d records)\n",
					res.Backup.RecordsLogged, res.RecoveryElapsed, res.Recovery.RecordsInLog)
			} else {
				fmt.Fprintln(os.Stderr, "primary completed before the kill trigger fired")
			}
		} else {
			res, err := ftvm.RunReplicated(prog, m, opts)
			if err != nil {
				return err
			}
			console, st, elapsed = res.Console, res.Stats, res.Elapsed
			fmt.Fprintf(os.Stderr, "replicated (%s): %d records logged, %d frames, %d output commits\n",
				m, res.Primary.RecordsLogged, res.Primary.FramesSent, res.Primary.OutputIntents)
		}
	default:
		return fmt.Errorf("-kill requires -mode")
	}

	if !*quiet {
		for _, line := range console {
			fmt.Println(line)
		}
	}
	if *stats {
		fmt.Fprintf(os.Stderr,
			"elapsed %v: %d instructions, %d branches, %d locks (%d objects, largest l_asn %d), %d reschedules, %d natives (%d intercepted, %d output commits), %d threads, %d GCs\n",
			elapsed.Round(time.Millisecond), st.Instructions, st.Branches,
			st.LocksAcquired, st.ObjectsLocked, st.LargestLASN, st.Reschedules,
			st.NativeCalls, st.NMIntercepted, st.NMOutputCommits, st.ThreadsSpawned+1, st.GCs)
	}
	return nil
}

func parseMode(s string) (ftvm.Mode, error) {
	switch s {
	case "lock":
		return ftvm.ModeLock, nil
	case "sched":
		return ftvm.ModeSched, nil
	case "lockint":
		return ftvm.ModeLockInterval, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want lock, sched or lockint)", s)
	}
}

func loadProgram(bench string, scale int, args []string) (*ftvm.Program, error) {
	if bench != "" {
		return programs.Compile(bench, scale)
	}
	if len(args) != 1 {
		return nil, fmt.Errorf("usage: ftvm-run [flags] <program.(ml|fta|ftb)> (or -bench <name>)")
	}
	path := args[0]
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	switch {
	case strings.HasSuffix(path, ".ml"):
		return minilang.Compile(path, string(data))
	case strings.HasSuffix(path, ".fta"):
		return bytecode.AssembleString(string(data))
	case strings.HasSuffix(path, ".ftb"):
		return bytecode.DecodeBytes(data)
	default:
		// Guess: try minilang first, then assembly.
		if p, err := minilang.Compile(path, string(data)); err == nil {
			return p, nil
		}
		return bytecode.AssembleString(string(data))
	}
}
