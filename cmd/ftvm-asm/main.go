// Command ftvm-asm converts between FTVM program representations: compile
// minilang to a binary image, assemble text assembly, disassemble either.
//
// Usage:
//
//	ftvm-asm -o prog.ftb prog.ml        # compile minilang to binary
//	ftvm-asm -o prog.ftb prog.fta       # assemble text assembly to binary
//	ftvm-asm -d prog.ftb                # disassemble a binary image
//	ftvm-asm -d prog.ml                 # show the code minilang compiles to
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bytecode"
	"repro/internal/minilang"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ftvm-asm:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out    = flag.String("o", "", "output binary image path")
		disasm = flag.Bool("d", false, "disassemble to stdout")
		verify = flag.Bool("verify", false, "verify only (no output)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: ftvm-asm [-o out.ftb | -d | -verify] <prog.(ml|fta|ftb)>")
	}
	path := flag.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var prog *bytecode.Program
	switch {
	case strings.HasSuffix(path, ".ml"):
		prog, err = minilang.Compile(path, string(data))
	case strings.HasSuffix(path, ".ftb"):
		prog, err = bytecode.DecodeBytes(data)
	default:
		prog, err = bytecode.AssembleString(string(data))
	}
	if err != nil {
		return err
	}
	if *verify {
		fmt.Fprintf(os.Stderr, "%s: ok (%d methods, %d classes, %d instructions)\n",
			path, len(prog.Methods), len(prog.Classes), prog.InstrCount())
		return nil
	}
	if *disasm {
		fmt.Print(bytecode.Disassemble(prog))
		return nil
	}
	if *out == "" {
		return fmt.Errorf("need -o, -d or -verify")
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := bytecode.Encode(f, prog); err != nil {
		return err
	}
	return f.Close()
}
