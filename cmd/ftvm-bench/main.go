// Command ftvm-bench regenerates the paper's evaluation (§5): Table 2 event
// counts and the Figure 2/3/4 execution-time and overhead-decomposition
// measurements, for the six SPEC JVM98-analog workloads.
//
// Usage:
//
//	ftvm-bench -all                 # everything (default)
//	ftvm-bench -table2              # Table 2 only
//	ftvm-bench -fig2 -fig3 -fig4    # selected figures
//	ftvm-bench -bench db,mtrt       # restrict benchmarks
//	ftvm-bench -scale 2 -repeats 3  # bigger workloads, more rounds
//	ftvm-bench -no-network          # disable the simulated 100 Mbps link
//	ftvm-bench -metrics -bench db   # raw replication metrics as JSON
//	ftvm-bench -quick -metrics      # one fast round, metrics JSON (CI smoke)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/vm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ftvm-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		all       = flag.Bool("all", false, "run every table and figure")
		table2    = flag.Bool("table2", false, "Table 2: per-benchmark event counts")
		fig2      = flag.Bool("fig2", false, "Figure 2: normalized execution times")
		fig3      = flag.Bool("fig3", false, "Figure 3: lock-replication overhead decomposition")
		fig4      = flag.Bool("fig4", false, "Figure 4: thread-scheduling overhead decomposition")
		takeover  = flag.Bool("takeover", false, "extension: cold vs warm backup takeover latency")
		metrics   = flag.Bool("metrics", false, "dump raw replication metrics as JSON")
		quick     = flag.Bool("quick", false, "fast preset: one round, no simulated network")
		benchList = flag.String("bench", "", "comma-separated benchmark subset (default all six)")
		scale     = flag.Int("scale", 1, "workload scale factor")
		repeats   = flag.Int("repeats", 2, "measurement rounds (fastest kept; plus one warm-up)")
		noNet     = flag.Bool("no-network", false, "disable the simulated network link")
		pairFreq  = flag.Bool("pairfreq", false, "dump opcode-pair frequencies over the benchmarks (feeds the fusion table)")
		pairTop   = flag.Int("pairfreq-top", 48, "pair ranking depth for -pairfreq")
		dispatch  = flag.String("dispatch", "", "interpreter engine: threaded (default) or switch")
		perMsg    = flag.Duration("net-per-msg", 150*time.Microsecond, "simulated per-message cost")
		perKB     = flag.Duration("net-per-kb", 450*time.Microsecond, "simulated per-KB cost")
	)
	flag.Parse()
	if *quick {
		*repeats = 1
		*noNet = true
	}
	if !*table2 && !*fig2 && !*fig3 && !*fig4 && !*takeover && !*metrics && !*pairFreq {
		*all = true
	}
	if *all {
		*table2, *fig2, *fig3, *fig4 = true, true, true, true
	}
	disp, err := vm.ParseDispatch(*dispatch)
	if err != nil {
		return err
	}
	cfg := harness.Config{
		Scale:     *scale,
		Repeats:   *repeats,
		NoNetwork: *noNet,
		NetPerMsg: *perMsg,
		NetPerKB:  *perKB,
		Dispatch:  disp,
	}
	if *benchList != "" {
		cfg.Benchmarks = strings.Split(*benchList, ",")
	}

	if *pairFreq {
		fmt.Fprintf(os.Stderr, "profiling opcode pairs over %v (scale %d)...\n", benchNames(cfg), *scale)
		dyn, static, err := harness.PairFreq(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("executed pairs (%d total):\n%s\n", dyn.Total(), dyn.Table(*pairTop))
		fmt.Printf("static pairs (%d total):\n%s", static.Total(), static.Table(*pairTop))
		return nil
	}

	var results []*harness.BenchResult
	if *table2 || *fig2 || *fig3 || *fig4 || *metrics {
		fmt.Fprintf(os.Stderr, "measuring %v (scale %d, %d rounds + warm-up)...\n",
			benchNames(cfg), *scale, *repeats)
		start := time.Now()
		var err error
		results, err = harness.RunAll(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "done in %v\n\n", time.Since(start).Round(time.Second))
	}

	if *table2 {
		fmt.Println(harness.Table2(results))
	}
	if *fig2 {
		fmt.Println(harness.Figure2(results))
	}
	if *fig3 {
		fmt.Println(harness.Figure3(results))
	}
	if *fig4 {
		fmt.Println(harness.Figure4(results))
	}
	if *takeover || *all {
		var tr []*harness.TakeoverResult
		for _, name := range []string{"jess", "mtrt"} {
			r, err := harness.MeasureTakeover(name, 0.5, cfg)
			if err != nil {
				return fmt.Errorf("takeover %s: %w", name, err)
			}
			tr = append(tr, r)
		}
		fmt.Println(harness.TakeoverReport(tr))
	}
	if *metrics {
		doc, err := harness.MetricsJSON(results)
		if err != nil {
			return err
		}
		fmt.Println(doc)
	}
	if len(results) > 0 && !*metrics {
		fmt.Println(harness.Summary(results))
	}
	return nil
}

func benchNames(cfg harness.Config) []string {
	if len(cfg.Benchmarks) > 0 {
		return cfg.Benchmarks
	}
	return []string{"jess", "jack", "compress", "db", "mpegaudio", "mtrt"}
}
