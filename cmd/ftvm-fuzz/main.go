// Command ftvm-fuzz is the open-ended soak driver for the whole-program
// differential fuzzer (internal/fuzzgen): it generates seeded multi-threaded
// minilang programs and cross-checks standalone, replicated, failover,
// consensus, and dispatch-engine execution, shrinking any divergence to a
// minimized .mini repro artifact.
//
// Usage:
//
//	ftvm-fuzz                               # 100 seeds, every stage
//	ftvm-fuzz -seeds 100000 -size large     # overnight soak
//	ftvm-fuzz -mode failover -seeds 5000    # failure injection only
//	ftvm-fuzz -seeds 1 -start 8241 -v       # re-run one failing seed
//
// Exit status is non-zero if any seed diverged; repro artifacts land in
// -artifacts (seed<N>-<stage>.mini plus .ref.txt/.got.txt consoles).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fuzzgen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ftvm-fuzz:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seeds     = flag.Int("seeds", 100, "number of seeds to check")
		start     = flag.Uint64("start", 0, "first seed")
		mode      = flag.String("mode", "all", "stage to check: all, standalone, replicated, failover, consensus, dispatch")
		sizeName  = flag.String("size", "medium", "program size tier: small, medium, large")
		artifacts = flag.String("artifacts", "fuzz-artifacts", "directory for minimized repro artifacts")
		jobs      = flag.Int("j", runtime.GOMAXPROCS(0), "parallel workers")
		verbose   = flag.Bool("v", false, "log every seed")
	)
	flag.Parse()

	size, err := fuzzgen.SizeByName(*sizeName)
	if err != nil {
		return err
	}
	var stages []string
	switch *mode {
	case "all":
		stages = nil // every stage
	case fuzzgen.StageStandalone, fuzzgen.StageReplicated, fuzzgen.StageFailover,
		fuzzgen.StageConsensus, fuzzgen.StageDispatch:
		stages = []string{*mode}
	default:
		return fmt.Errorf("unknown -mode %q (all, standalone, replicated, failover, consensus, dispatch)", *mode)
	}
	if *jobs < 1 {
		*jobs = 1
	}

	cfg := &fuzzgen.Config{Size: size, ArtifactDir: *artifacts}
	var (
		checked  atomic.Int64
		diverged atomic.Int64
		outMu    sync.Mutex
		wg       sync.WaitGroup
		work     = make(chan uint64)
	)
	for w := 0; w < *jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := range work {
				p := fuzzgen.Generate(seed, size)
				f := cfg.CheckProg(p, stages)
				checked.Add(1)
				if f == nil {
					if *verbose {
						outMu.Lock()
						fmt.Printf("seed %d ok\n", seed)
						outMu.Unlock()
					}
					continue
				}
				diverged.Add(1)
				report := cfg.Report(p, f)
				outMu.Lock()
				fmt.Printf("FAIL %s", report)
				outMu.Unlock()
			}
		}()
	}

	t0 := time.Now()
	stop := make(chan struct{})
	go func() {
		tick := time.NewTicker(10 * time.Second)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				n := checked.Load()
				fmt.Printf("... %d/%d seeds checked (%.1f/s), %d divergences\n",
					n, *seeds, float64(n)/time.Since(t0).Seconds(), diverged.Load())
			}
		}
	}()

	for i := 0; i < *seeds; i++ {
		work <- *start + uint64(i)
	}
	close(work)
	wg.Wait()
	close(stop)

	fmt.Printf("checked %d seeds (size %s, mode %s) in %v: %d divergences\n",
		checked.Load(), size, *mode, time.Since(t0).Round(time.Millisecond), diverged.Load())
	if diverged.Load() > 0 {
		return fmt.Errorf("%d seeds diverged; repro artifacts in %s", diverged.Load(), *artifacts)
	}
	return nil
}
