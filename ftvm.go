// Package ftvm is the public API of the fault-tolerant virtual machine — a
// Go reproduction of "A Fault-Tolerant Java Virtual Machine" (Napper,
// Alvisi, Vin; DSN 2003).
//
// It exposes the pieces a user composes:
//
//   - programs: compile minilang source (CompileSource), assemble FTVM text
//     assembly (Assemble), or load/store binary images;
//   - standalone execution: Run;
//   - replicated execution: RunReplicated runs a primary/backup pair to
//     completion; RunWithFailover kills the primary mid-run and has the cold
//     backup recover from the log and finish the program.
//
// Three replica-coordination modes are available: the paper's two
// techniques — ModeLock (replicated lock acquisition, §4.2) and ModeSched
// (replicated thread scheduling, §4.2) — plus ModeLockInterval, the
// logical-interval compression its §6 projects. Backups are cold by default
// (the paper's design); RunWarmReplicated runs a semi-active warm backup
// that executes concurrently with the primary.
package ftvm

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/bytecode"
	"repro/internal/consensus"
	"repro/internal/env"
	"repro/internal/minilang"
	"repro/internal/native"
	"repro/internal/replication"
	"repro/internal/sehandler"
	"repro/internal/simtest/clock"
	"repro/internal/transport"
	"repro/internal/vm"
	"repro/internal/wire"
)

// Program is a verified FTVM program.
type Program = bytecode.Program

// Stats are the VM execution counters.
type Stats = vm.Stats

// Mode selects the multi-threading replica-coordination technique.
type Mode = replication.Mode

// Dispatch selects the interpreter engine (vm.Dispatch): the default
// subroutine-threaded fast tier or the reference switch loop. Both produce
// bit-identical event logs, recovery records and console output.
type Dispatch = vm.Dispatch

// Interpreter dispatch engines.
const (
	// DispatchThreaded is the subroutine-threaded fast tier (default).
	DispatchThreaded = vm.DispatchThreaded
	// DispatchSwitch is the reference switch interpreter.
	DispatchSwitch = vm.DispatchSwitch
)

// ParseDispatch parses "threaded" or "switch" (empty = threaded).
func ParseDispatch(s string) (Dispatch, error) { return vm.ParseDispatch(s) }

// Replication modes.
const (
	// ModeLock replicates the sequence of monitor acquisitions.
	ModeLock = replication.ModeLock
	// ModeSched replicates thread scheduling decisions.
	ModeSched = replication.ModeSched
	// ModeLockInterval is lock replication with DejaVu-style logical
	// interval compression (the paper's §6 optimization, implemented).
	ModeLockInterval = replication.ModeLockInterval
)

// ErrBackupLost is the primary-side failure detector's verdict: the backup
// stopped acknowledging within Options.AckTimeout (or its transport failed).
// Returned (wrapped) from replicated runs unless DegradeOnBackupLoss is set.
var ErrBackupLost = replication.ErrBackupLost

// BackendKind selects how the primary's frame stream reaches a durable,
// ordered, committed log (the replication.CoordinationBackend behind a
// replicated run).
type BackendKind int

const (
	// BackendPair is the paper's primary/backup pair: one cold backup logs
	// frames and acknowledges output commits (default).
	BackendPair BackendKind = iota
	// BackendConsensus replicates frames onto a 3-replica consensus log; an
	// output commit blocks until majority commit in the leader's term
	// (internal/consensus). The VM is colocated with the elected leader, and
	// RunWithFailover kills leader and VM together: the survivors elect,
	// re-commit, and recovery replays their committed prefix.
	BackendConsensus
)

// CompileSource compiles minilang source into a program.
func CompileSource(name, src string) (*Program, error) {
	return minilang.Compile(name, src)
}

// Assemble parses FTVM text assembly into a program.
func Assemble(src string) (*Program, error) {
	return bytecode.AssembleString(src)
}

// Disassemble renders a program as text assembly.
func Disassemble(p *Program) string { return bytecode.Disassemble(p) }

// EncodeProgram writes the binary image of p.
func EncodeProgram(w io.Writer, p *Program) error { return bytecode.Encode(w, p) }

// DecodeProgram reads a binary program image.
func DecodeProgram(r io.Reader) (*Program, error) { return bytecode.Decode(r) }

// Options tune an execution.
type Options struct {
	// EnvSeed derives the environment's clock jitter and entropy (default 1).
	EnvSeed int64
	// PolicySeed seeds the (primary's) scheduling policy (default 1).
	PolicySeed int64
	// MinQuantum/MaxQuantum bound the scheduling quantum in branch counts
	// (defaults 1024/8192).
	MinQuantum, MaxQuantum uint64
	// FlushEvery batches this many log records per frame (default 512).
	FlushEvery int
	// GCThreshold triggers automatic GC at this live-object count
	// (default 1<<20, negative disables).
	GCThreshold int
	// MaxInstructions aborts runaway programs (0 = unlimited).
	MaxInstructions uint64
	// Env supplies a pre-built environment (files, channel messages); a
	// fresh one is created from EnvSeed when nil.
	Env *env.Env
	// Heartbeat enables primary→backup heartbeats at this period (0 = rely
	// on transport closure for failure detection).
	Heartbeat time.Duration
	// AckTimeout bounds the primary's output-commit wait: if the backup does
	// not acknowledge within this window it is declared lost
	// (replication.ErrBackupLost) instead of blocking the output path
	// forever (0 = wait forever, the paper's pure pessimism).
	AckTimeout time.Duration
	// DegradeOnBackupLoss lets the primary continue unreplicated after its
	// failure detector declares the backup lost; by default the loss aborts
	// the run with replication.ErrBackupLost.
	DegradeOnBackupLoss bool
	// PipeCapacity sizes the in-process log channel (default 1024 frames).
	PipeCapacity int
	// Backend selects the coordination path for replicated runs (default
	// BackendPair). BackendConsensus ignores Heartbeat (leader keepalives
	// live inside the consensus replicas) and reads AckTimeout as the bound
	// on each majority-commit wait.
	Backend BackendKind
	// ConsensusSeed pins the consensus cluster's randomized election
	// schedule (default 1; only meaningful with BackendConsensus).
	ConsensusSeed uint64
	// NetPerMsg/NetPerKB add a calibrated cost to every transport message,
	// simulating the paper's testbed network (two machines on 100 Mbps
	// Ethernet) on a single host. Zero means a raw in-process pipe.
	NetPerMsg time.Duration
	NetPerKB  time.Duration
	// Dispatch selects the interpreter engine for every VM the run builds
	// (primary and recovery replay alike). The zero value is the threaded
	// fast tier; DispatchSwitch selects the reference switch loop.
	Dispatch Dispatch
	// Clock supplies time for ack deadlines, heartbeats, kill-trigger
	// polling, transport waits, and elapsed measurements (nil = wall
	// clock). The in-process pipe is built on this clock too, so a caller
	// injecting a virtual clock (the internal/simtest harness) gets a fully
	// simulated run; such callers must invoke the run functions from a
	// clock-attached goroutine.
	Clock clock.Clock
	// CaptureLog, when set, writes the replicated run's event log to this
	// path as an .ftlog capture once the backup (or consensus log) has the
	// full record stream. The capture embeds the program, the seeds and the
	// replay policy parameters, so ftvm-debug can replay it to any position
	// without the original command line.
	CaptureLog string
}

func (o *Options) fill() {
	if o.EnvSeed == 0 {
		o.EnvSeed = 1
	}
	if o.PolicySeed == 0 {
		o.PolicySeed = 1
	}
	if o.MinQuantum == 0 {
		o.MinQuantum = 1024
	}
	if o.MaxQuantum < o.MinQuantum {
		o.MaxQuantum = o.MinQuantum * 8
	}
	if o.PipeCapacity == 0 {
		o.PipeCapacity = 1024
	}
}

func (o *Options) clock() clock.Clock { return clock.Or(o.Clock) }

// newPipe builds the primary/backup endpoints, wrapping the primary side
// with the simulated network cost when configured. The pipe itself runs on
// o.Clock, so under a virtual clock the whole replicated run — including
// transport waits and Recv timeouts — advances in simulated time.
func (o *Options) newPipe() (transport.Endpoint, transport.Endpoint) {
	pEnd, bEnd := transport.PipeClock(o.PipeCapacity, o.Clock)
	if o.NetPerMsg > 0 || o.NetPerKB > 0 {
		return transport.WithLatencyClock(pEnd, o.NetPerMsg, o.NetPerKB, o.Clock),
			transport.WithLatencyClock(bEnd, o.NetPerMsg, o.NetPerKB, o.Clock)
	}
	return pEnd, bEnd
}

func (o *Options) environment() *env.Env {
	if o.Env != nil {
		return o.Env
	}
	o.Env = env.New(o.EnvSeed)
	return o.Env
}

// Result describes a standalone run.
type Result struct {
	Stats   Stats
	Console []string
	Elapsed time.Duration
	Env     *env.Env
}

// Run executes a program standalone (no replication).
func Run(prog *Program, opts Options) (*Result, error) {
	opts.fill()
	environ := opts.environment()
	machine, err := vm.New(vm.Config{
		Program:         prog,
		Env:             environ,
		Coordinator:     vm.NewDefaultCoordinator(vm.NewSeededPolicy(opts.PolicySeed, opts.MinQuantum, opts.MaxQuantum)),
		GCThreshold:     opts.GCThreshold,
		MaxInstructions: opts.MaxInstructions,
		Dispatch:        opts.Dispatch,
	})
	if err != nil {
		return nil, err
	}
	clk := opts.clock()
	t0 := clk.Now()
	runErr := machine.Run()
	elapsed := clk.Since(t0)
	res := &Result{
		Stats:   machine.Stats(),
		Console: environ.Console().Lines(),
		Elapsed: elapsed,
		Env:     environ,
	}
	if runErr != nil {
		return res, runErr
	}
	return res, nil
}

// ReplicatedResult describes a replicated run.
type ReplicatedResult struct {
	Stats           Stats // primary VM counters (up to the kill, if any)
	Console         []string
	Elapsed         time.Duration // primary wall time
	Env             *env.Env
	Primary         replication.PrimaryMetrics
	Backup          replication.BackupStats
	Outcome         replication.ServeOutcome
	Killed          bool
	Recovery        *replication.RecoveryReport
	RecoveryElapsed time.Duration
	// Consensus holds per-replica protocol counters when the run used
	// BackendConsensus (nil for pair runs).
	Consensus []consensus.Stats
}

// KillTrigger decides when to kill the primary in RunWithFailover: it is
// polled with the number of records the backup has logged so far and returns
// true to pull the plug. Use KillAfterRecords for the common case.
type KillTrigger func(recordsLogged int) bool

// KillAfterRecords kills the primary once the backup has logged n records.
func KillAfterRecords(n int) KillTrigger {
	return func(logged int) bool { return logged >= n }
}

// RunReplicated executes prog under primary-backup replication to clean
// completion (no failure injected).
func RunReplicated(prog *Program, mode Mode, opts Options) (*ReplicatedResult, error) {
	return runReplicated(prog, mode, opts, nil)
}

// RunWithFailover executes prog replicated, kills the primary when the
// trigger fires, and recovers at the backup. The returned result's Console
// and Recovery reflect the completed recovered execution.
func RunWithFailover(prog *Program, mode Mode, trigger KillTrigger, opts Options) (*ReplicatedResult, error) {
	if trigger == nil {
		return nil, errors.New("ftvm: nil kill trigger")
	}
	return runReplicated(prog, mode, opts, trigger)
}

func runReplicated(prog *Program, mode Mode, opts Options, trigger KillTrigger) (*ReplicatedResult, error) {
	if opts.Backend == BackendConsensus {
		res, _, err := runConsensus(prog, mode, opts, trigger)
		return res, err
	}
	opts.fill()
	clk := opts.clock()
	environ := opts.environment()
	pEnd, bEnd := opts.newPipe()

	primary, err := replication.NewPrimary(replication.PrimaryConfig{
		Mode:                mode,
		Endpoint:            pEnd,
		Policy:              vm.NewSeededPolicy(opts.PolicySeed, opts.MinQuantum, opts.MaxQuantum),
		FlushEvery:          opts.FlushEvery,
		HeartbeatEvery:      opts.Heartbeat,
		AckTimeout:          opts.AckTimeout,
		DegradeOnBackupLoss: opts.DegradeOnBackupLoss,
		Clock:               opts.Clock,
	})
	if err != nil {
		return nil, err
	}
	machine, err := vm.New(vm.Config{
		Program:         prog,
		Env:             environ,
		Coordinator:     primary,
		GCThreshold:     opts.GCThreshold,
		MaxInstructions: opts.MaxInstructions,
		TrackProgress:   mode == ModeSched,
		Dispatch:        opts.Dispatch,
	})
	if err != nil {
		return nil, err
	}
	backup, err := replication.NewBackup(replication.BackupConfig{Mode: mode, Endpoint: bEnd, Clock: opts.Clock})
	if err != nil {
		return nil, err
	}

	// Helper goroutines are spawned through the clock and joined via clock
	// Flags so the whole structure also works under an injected virtual
	// clock (bare channel joins would stall simulated time).
	serveDone := clock.NewFlag(clk)
	var outcome replication.ServeOutcome
	var serveErr error
	clk.Go(func() {
		defer serveDone.Set()
		outcome, serveErr = backup.Serve()
	})

	killDone := clock.NewFlag(clk)
	if trigger != nil {
		clk.Go(func() {
			defer killDone.Set()
			for !serveDone.IsSet() {
				if trigger(backup.Store().Len()) {
					machine.Kill()
					return
				}
				clk.Sleep(50 * time.Microsecond)
			}
		})
	} else {
		killDone.Set()
	}

	t0 := clk.Now()
	runErr := machine.Run()
	elapsed := clk.Since(t0)
	serveDone.Wait()
	killDone.Wait()

	res := &ReplicatedResult{
		Stats:   machine.Stats(),
		Console: environ.Console().Lines(),
		Elapsed: elapsed,
		Env:     environ,
		Primary: primary.Metrics(),
		Backup:  backup.Stats(),
		Outcome: outcome,
		Killed:  machine.Killed(),
	}
	if opts.CaptureLog != "" {
		if cerr := writeCapture(opts.CaptureLog, prog, mode, opts, backup.Store().Records()); cerr != nil {
			return res, fmt.Errorf("capture log: %w", cerr)
		}
	}
	if serveErr != nil {
		return res, fmt.Errorf("backup serve: %w", serveErr)
	}
	if runErr != nil && !machine.Killed() {
		return res, fmt.Errorf("primary run: %w", runErr)
	}

	if trigger == nil {
		if outcome != replication.OutcomePrimaryCompleted {
			return res, fmt.Errorf("unexpected backup outcome %v", outcome)
		}
		return res, nil
	}

	// The primary may have completed before the trigger fired — including the
	// race where the trigger observes the final record count just as the VM
	// halts and the kill lands on an already-finished machine. The backup can
	// only report a clean completion after the halt marker shipped, which in
	// turn happens only after every output commit succeeded, so a completed
	// outcome wins over the kill flag.
	if !machine.Killed() || outcome == replication.OutcomePrimaryCompleted {
		return res, nil
	}
	if !outcome.Failed() {
		return res, fmt.Errorf("primary killed but backup observed %v", outcome)
	}
	r0 := clk.Now()
	_, report, err := backup.Recover(replication.RecoverConfig{
		Program:         prog,
		Env:             environ,
		Policy:          vm.NewSeededPolicy(opts.PolicySeed^0x5DEECE66D, opts.MinQuantum, opts.MaxQuantum),
		GCThreshold:     opts.GCThreshold,
		MaxInstructions: opts.MaxInstructions,
		Dispatch:        opts.Dispatch,
	})
	res.RecoveryElapsed = clk.Since(r0)
	res.Recovery = report
	res.Console = environ.Console().Lines()
	if err != nil {
		return res, fmt.Errorf("recovery: %w", err)
	}
	return res, nil
}

// ReplayResult describes a backup replay measurement (the "backup" columns
// of Figure 2: the time for the backup to replay events from the log).
type ReplayResult struct {
	Elapsed time.Duration
	Report  *replication.RecoveryReport
}

// MeasureReplay runs prog replicated to completion while capturing the full
// log, then replays the entire execution at a fresh backup against a fresh
// copy of the environment. It returns the primary-side result and the replay
// measurement. envFactory must produce identically-seeded environments.
func MeasureReplay(prog *Program, mode Mode, opts Options, envFactory func() *env.Env) (*ReplicatedResult, *ReplayResult, error) {
	if envFactory == nil {
		return nil, nil, errors.New("ftvm: nil environment factory")
	}
	if opts.Backend == BackendConsensus {
		return measureConsensusReplay(prog, mode, opts, envFactory)
	}
	opts.fill()
	clk := opts.clock()
	opts.Env = envFactory()
	pEnd, bEnd := opts.newPipe()
	primary, err := replication.NewPrimary(replication.PrimaryConfig{
		Mode:       mode,
		Endpoint:   pEnd,
		Policy:     vm.NewSeededPolicy(opts.PolicySeed, opts.MinQuantum, opts.MaxQuantum),
		FlushEvery: opts.FlushEvery,
		AckTimeout: opts.AckTimeout,
		Clock:      opts.Clock,
	})
	if err != nil {
		return nil, nil, err
	}
	machine, err := vm.New(vm.Config{
		Program:         prog,
		Env:             opts.Env,
		Coordinator:     primary,
		GCThreshold:     opts.GCThreshold,
		MaxInstructions: opts.MaxInstructions,
		TrackProgress:   mode == ModeSched,
		Dispatch:        opts.Dispatch,
	})
	if err != nil {
		return nil, nil, err
	}
	backup, err := replication.NewBackup(replication.BackupConfig{Mode: mode, Endpoint: bEnd, Clock: opts.Clock})
	if err != nil {
		return nil, nil, err
	}
	serveDone := clock.NewFlag(clk)
	var outcome replication.ServeOutcome
	var serveErr error
	clk.Go(func() {
		defer serveDone.Set()
		outcome, serveErr = backup.Serve()
	})
	t0 := clk.Now()
	runErr := machine.Run()
	elapsed := clk.Since(t0)
	serveDone.Wait()
	res := &ReplicatedResult{
		Stats:   machine.Stats(),
		Console: opts.Env.Console().Lines(),
		Elapsed: elapsed,
		Env:     opts.Env,
		Primary: primary.Metrics(),
		Backup:  backup.Stats(),
		Outcome: outcome,
	}
	if runErr != nil {
		return res, nil, fmt.Errorf("primary run: %w", runErr)
	}
	if serveErr != nil {
		return res, nil, fmt.Errorf("backup serve: %w", serveErr)
	}

	// Replay the full log at a fresh backup over a fresh environment. The
	// clean-halt marker is stripped so the replayer treats the log as a
	// crash at the very end (the paper's backup replay measurement).
	replayBackup, err := replication.NewBackup(replication.BackupConfig{Mode: mode, Endpoint: nopEndpoint{}})
	if err != nil {
		return res, nil, err
	}
	if err := replayBackup.LoadRecords(backup.Store().Records()); err != nil {
		return res, nil, err
	}
	r0 := clk.Now()
	_, report, err := replayBackup.Recover(replication.RecoverConfig{
		Program:         prog,
		Env:             envFactory(),
		Policy:          vm.NewSeededPolicy(opts.PolicySeed^0x5DEECE66D, opts.MinQuantum, opts.MaxQuantum),
		GCThreshold:     opts.GCThreshold,
		MaxInstructions: opts.MaxInstructions,
		Dispatch:        opts.Dispatch,
	})
	replay := &ReplayResult{Elapsed: clk.Since(r0), Report: report}
	if err != nil {
		return res, replay, fmt.Errorf("replay: %w", err)
	}
	return res, replay, nil
}

// consensusLeaderWait bounds each leader-election wait in the consensus
// path; generous because on a virtual clock it costs nothing and on the wall
// clock elections settle in tens of milliseconds.
const consensusLeaderWait = 10 * time.Second

// runConsensus is runReplicated over the consensus coordination path: a
// 3-replica replicated log stands where the pair's backup channel stood, the
// VM runs colocated with the elected leader, and a kill takes out VM and
// leader together. It also returns the committed record stream (from a
// surviving replica) so MeasureReplay can re-execute it.
func runConsensus(prog *Program, mode Mode, opts Options, trigger KillTrigger) (*ReplicatedResult, []wire.Record, error) {
	opts.fill()
	clk := opts.clock()
	environ := opts.environment()
	cluster, err := consensus.NewCluster(consensus.Config{
		Seed:         opts.ConsensusSeed,
		Clock:        opts.Clock,
		PipeCapacity: opts.PipeCapacity,
	})
	if err != nil {
		return nil, nil, err
	}
	cluster.Start()
	defer cluster.Stop()
	leader, err := cluster.WaitLeader(consensusLeaderWait)
	if err != nil {
		return nil, nil, err
	}
	be := consensus.NewBackend(leader, opts.AckTimeout)
	primary, err := replication.NewPrimary(replication.PrimaryConfig{
		Mode:                mode,
		Backend:             be,
		Policy:              vm.NewSeededPolicy(opts.PolicySeed, opts.MinQuantum, opts.MaxQuantum),
		FlushEvery:          opts.FlushEvery,
		DegradeOnBackupLoss: opts.DegradeOnBackupLoss,
		Clock:               opts.Clock,
	})
	if err != nil {
		return nil, nil, err
	}
	machine, err := vm.New(vm.Config{
		Program:         prog,
		Env:             environ,
		Coordinator:     primary,
		GCThreshold:     opts.GCThreshold,
		MaxInstructions: opts.MaxInstructions,
		TrackProgress:   mode == ModeSched,
		Dispatch:        opts.Dispatch,
	})
	if err != nil {
		return nil, nil, err
	}

	// The kill trigger counts committed records — the consensus analogue of
	// "records the backup has logged" — by incrementally decoding committed
	// entry payloads at the leader.
	runDone := clock.NewFlag(clk)
	killDone := clock.NewFlag(clk)
	if trigger != nil {
		clk.Go(func() {
			defer killDone.Set()
			var seen uint64
			count := 0
			for !runDone.IsSet() {
				payloads, commit := cluster.CommittedPayloads(leader.ID(), seen)
				seen = commit
				for _, p := range payloads {
					if recs, derr := wire.DecodeAll(p); derr == nil {
						count += len(recs)
					}
				}
				if trigger(count) {
					// The process hosting both the VM and the leader replica
					// fail-stops; the survivors must elect and recover.
					machine.Kill()
					cluster.Kill(leader.ID())
					return
				}
				clk.Sleep(50 * time.Microsecond)
			}
		})
	} else {
		killDone.Set()
	}

	t0 := clk.Now()
	runErr := machine.Run()
	elapsed := clk.Since(t0)
	runDone.Set()
	killDone.Wait()

	res := &ReplicatedResult{
		Stats:   machine.Stats(),
		Console: environ.Console().Lines(),
		Elapsed: elapsed,
		Env:     environ,
		Primary: primary.Metrics(),
		Killed:  machine.Killed(),
	}
	for i := 0; i < cluster.Size(); i++ {
		res.Consensus = append(res.Consensus, cluster.Replica(i).Snapshot())
	}

	// Read the committed log back from a surviving replica — after a kill
	// that means waiting out a fresh election (whose barrier commit fences
	// every entry that survived).
	source := leader
	if source.Stopped() {
		source, err = cluster.WaitLeader(consensusLeaderWait)
		if err != nil {
			detail := ""
			for i := 0; i < cluster.Size(); i++ {
				detail += fmt.Sprintf(" [%d %+v stopped=%v]", i, cluster.Replica(i).Snapshot(), cluster.Replica(i).Stopped())
			}
			return res, nil, fmt.Errorf("consensus failover: %w;%s", err, detail)
		}
	}
	recs, err := cluster.CommittedRecords(source.ID())
	if err != nil {
		return res, nil, fmt.Errorf("consensus log: %w", err)
	}
	res.Backup = replication.BackupStats{RecordsLogged: uint64(len(recs))}
	if opts.CaptureLog != "" {
		if cerr := writeCapture(opts.CaptureLog, prog, mode, opts, recs); cerr != nil {
			return res, recs, fmt.Errorf("capture log: %w", cerr)
		}
	}
	halted := false
	for _, r := range recs {
		if _, ok := r.(*wire.Halt); ok {
			halted = true
		}
	}

	if runErr != nil && !machine.Killed() {
		res.Outcome = replication.OutcomePrimaryFailed
		return res, recs, fmt.Errorf("primary run: %w", runErr)
	}
	if trigger == nil {
		if !halted {
			res.Outcome = replication.OutcomePrimaryFailed
			return res, recs, errors.New("consensus run finished without a committed halt")
		}
		res.Outcome = replication.OutcomePrimaryCompleted
		return res, recs, nil
	}
	// Same race as the pair path: a committed halt means every output commit
	// succeeded before the kill landed, so the run counts as completed.
	if !machine.Killed() || halted {
		res.Outcome = replication.OutcomePrimaryCompleted
		return res, recs, nil
	}

	// Recovery: load the survivors' committed prefix into a cold backup and
	// re-execute log-gated against the same environment, exactly as a
	// promoted pair backup would.
	res.Outcome = replication.OutcomePrimaryFailed
	replayBackup, err := replication.NewBackup(replication.BackupConfig{Mode: mode, Endpoint: nopEndpoint{}})
	if err != nil {
		return res, recs, err
	}
	if err := replayBackup.LoadRecords(recs); err != nil {
		return res, recs, fmt.Errorf("consensus recovery load: %w", err)
	}
	r0 := clk.Now()
	_, report, err := replayBackup.Recover(replication.RecoverConfig{
		Program:         prog,
		Env:             environ,
		Policy:          vm.NewSeededPolicy(opts.PolicySeed^0x5DEECE66D, opts.MinQuantum, opts.MaxQuantum),
		GCThreshold:     opts.GCThreshold,
		MaxInstructions: opts.MaxInstructions,
		Dispatch:        opts.Dispatch,
	})
	res.RecoveryElapsed = clk.Since(r0)
	res.Recovery = report
	res.Console = environ.Console().Lines()
	res.Backup = replayBackup.Stats()
	if err != nil {
		return res, recs, fmt.Errorf("recovery: %w", err)
	}
	return res, recs, nil
}

// measureConsensusReplay is MeasureReplay over the consensus path: a clean
// consensus-backed run, then a full replay of the committed record stream at
// a fresh backup over a fresh environment.
func measureConsensusReplay(prog *Program, mode Mode, opts Options, envFactory func() *env.Env) (*ReplicatedResult, *ReplayResult, error) {
	opts.fill()
	clk := opts.clock()
	opts.Env = envFactory()
	res, recs, err := runConsensus(prog, mode, opts, nil)
	if err != nil {
		return res, nil, err
	}
	replayBackup, err := replication.NewBackup(replication.BackupConfig{Mode: mode, Endpoint: nopEndpoint{}})
	if err != nil {
		return res, nil, err
	}
	if err := replayBackup.LoadRecords(recs); err != nil {
		return res, nil, err
	}
	r0 := clk.Now()
	_, report, err := replayBackup.Recover(replication.RecoverConfig{
		Program:         prog,
		Env:             envFactory(),
		Policy:          vm.NewSeededPolicy(opts.PolicySeed^0x5DEECE66D, opts.MinQuantum, opts.MaxQuantum),
		GCThreshold:     opts.GCThreshold,
		MaxInstructions: opts.MaxInstructions,
		Dispatch:        opts.Dispatch,
	})
	replay := &ReplayResult{Elapsed: clk.Since(r0), Report: report}
	if err != nil {
		return res, replay, fmt.Errorf("replay: %w", err)
	}
	return res, replay, nil
}

// writeCapture writes an .ftlog capture of a replicated run. The header's
// policy seed is the recovery policy seed (the fold the backup's replay
// uses), so a debugger opening the capture replays with exactly the
// scheduling the recovered backup would have used.
func writeCapture(path string, prog *Program, mode Mode, opts Options, records []wire.Record) error {
	return replication.WriteLogFile(path, replication.LogHeader{
		EnvSeed:         opts.EnvSeed,
		PolicySeed:      opts.PolicySeed ^ 0x5DEECE66D,
		MinQuantum:      opts.MinQuantum,
		MaxQuantum:      opts.MaxQuantum,
		Mode:            mode,
		Dispatch:        opts.Dispatch,
		MaxInstructions: opts.MaxInstructions,
		GCThreshold:     int64(opts.GCThreshold),
	}, prog, records)
}

// Natives returns the standard native registry (for inspection/extension).
func Natives() *native.Registry { return native.StdLib() }

// Handlers returns the default side-effect handler set.
func Handlers() *sehandler.Set { return sehandler.DefaultSet() }

// nopEndpoint satisfies transport.Endpoint for an offline replay backup.
type nopEndpoint struct{}

func (nopEndpoint) Send([]byte) error                  { return nil }
func (nopEndpoint) Recv(time.Duration) ([]byte, error) { return nil, transport.ErrClosed }
func (nopEndpoint) Close() error                       { return nil }
