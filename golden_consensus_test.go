package ftvm_test

// The consensus column of the golden sweep: every program pinned in
// testdata/exec_golden.json re-runs over the consensus-backed coordination
// path (Options.Backend = BackendConsensus), and its per-writer console
// streams must match the standalone capture frame for frame. The pinned file
// is only read here — the capture itself stays the property of
// TestExecGolden, so this column can never perturb it.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	ftvm "repro"
	"repro/internal/fuzzgen"
	"repro/internal/replication"
	"repro/internal/simtest/clock"
)

func TestExecGoldenConsensus(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep is not -short")
	}
	blob, err := os.ReadFile(filepath.Join("testdata", "exec_golden.json"))
	if err != nil {
		t.Fatalf("read golden (TestExecGolden -update creates it): %v", err)
	}
	want := make(map[string]*execCapture)
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatalf("parse golden: %v", err)
	}
	cases := goldenCases(t)
	names := make([]string, 0, len(cases))
	for name := range cases {
		names = append(names, name)
	}
	sort.Strings(names)
	modes := []ftvm.Mode{ftvm.ModeLock, ftvm.ModeSched, ftvm.ModeLockInterval}
	for i, name := range names {
		i, name := i, name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w, ok := want[name]
			if !ok {
				t.Fatalf("%s missing from golden file (run TestExecGolden -update)", name)
			}
			// Each run gets its own virtual clock so elections and commit
			// waits cost no wall time; the VM work is the same CPU either way.
			clk := clock.NewVirtual()
			defer clk.Watchdog(time.Minute)()
			var res *ftvm.ReplicatedResult
			var runErr error
			var wg sync.WaitGroup
			wg.Add(1)
			clk.Go(func() {
				defer wg.Done()
				res, runErr = ftvm.RunReplicated(cases[name], modes[i%len(modes)], ftvm.Options{
					EnvSeed:         20030622,
					PolicySeed:      1,
					MaxInstructions: 400_000_000,
					Backend:         ftvm.BackendConsensus,
					ConsensusSeed:   uint64(i) + 1,
					Clock:           clk,
				})
			})
			wg.Wait()
			if runErr != nil {
				t.Fatalf("consensus-backed run: %v", runErr)
			}
			if res.Outcome != replication.OutcomePrimaryCompleted {
				t.Fatalf("outcome %v, want completed", res.Outcome)
			}
			if detail, ok := fuzzgen.CompareFrames(w.Console, res.Console); !ok {
				t.Errorf("consensus column diverged from pinned golden: %s", detail)
			}
			// Majority commit really happened: the leader awaited at least
			// the final halt commit.
			if res.Primary.AcksAwaited == 0 {
				t.Error("no output commits awaited — consensus backend bypassed?")
			}
		})
	}
}
