#!/bin/sh
# clocklint: enforce the clock-injection rule (see DESIGN.md, "Deterministic
# simulation & the clock rule").
#
# Library code that runs inside the replicated machine must take its time from
# an injected clock.Clock, never from the wall directly — a naked time.Now or
# time.Sleep is invisible to the virtual clock and silently breaks the
# determinism the simulation harness depends on. Code that genuinely wants
# wall time (wall-clock metrics, real sockets) opts in explicitly by calling
# clock.Real.Now() etc., which reads as a decision instead of an accident and
# does not match this lint.
#
# Exempt: _test.go files (real-time tests are audited in DESIGN.md),
# internal/simtest/** (the clock implementation itself), and main packages
# under cmd/** (CLIs report wall time to humans).
set -eu
cd "$(dirname "$0")/.."

pattern='(^|[^.[:alnum:]_])time\.(Now|Sleep|After|AfterFunc|Since|Until|NewTimer|NewTicker|Tick)\('

files=$(find . -name '*.go' \
    ! -name '*_test.go' \
    ! -path './internal/simtest/*' \
    ! -path './cmd/*' \
    -print | sort)

# Self-check: the clock-sensitive packages must be in the scan set. The
# failure detectors in replication (heartbeats, ack timeouts), viewsvc
# (ping-based membership), and consensus (randomized election timeouts,
# leader heartbeats) are exactly where a naked wall-clock call would break
# determinism — if a future exemption swallowed them, this lint would pass
# vacuously.
for must in ./internal/replication ./internal/viewsvc ./internal/consensus ./internal/debug; do
    case "$files" in
        *"$must/"*) ;;
        *) echo "clock-lint: $must is missing from the scan set" >&2; exit 1 ;;
    esac
done

bad=$(printf '%s\n' "$files" | xargs grep -nE "$pattern" 2>/dev/null || true)

if [ -n "$bad" ]; then
    echo "clock-lint: naked wall-clock calls in library code." >&2
    echo "Use the injected clock.Clock, or clock.Real.* for an explicit wall-time opt-in:" >&2
    echo "$bad" >&2
    exit 1
fi
echo "clock-lint: ok"
