#!/bin/sh
# clocklint: enforce the clock-injection rule (see DESIGN.md, "Deterministic
# simulation & the clock rule").
#
# Library code that runs inside the replicated machine must take its time from
# an injected clock.Clock, never from the wall directly — a naked time.Now or
# time.Sleep is invisible to the virtual clock and silently breaks the
# determinism the simulation harness depends on. Code that genuinely wants
# wall time (wall-clock metrics, real sockets) opts in explicitly by calling
# clock.Real.Now() etc., which reads as a decision instead of an accident and
# does not match this lint.
#
# Exempt: _test.go files (real-time tests are audited in DESIGN.md),
# internal/simtest/** (the clock implementation itself), and main packages
# under cmd/** (CLIs report wall time to humans).
set -eu
cd "$(dirname "$0")/.."

pattern='(^|[^.[:alnum:]_])time\.(Now|Sleep|After|AfterFunc|Since|Until|NewTimer|NewTicker|Tick)\('

bad=$(find . -name '*.go' \
    ! -name '*_test.go' \
    ! -path './internal/simtest/*' \
    ! -path './cmd/*' \
    -print | sort | xargs grep -nE "$pattern" 2>/dev/null || true)

if [ -n "$bad" ]; then
    echo "clock-lint: naked wall-clock calls in library code." >&2
    echo "Use the injected clock.Clock, or clock.Real.* for an explicit wall-time opt-in:" >&2
    echo "$bad" >&2
    exit 1
fi
echo "clock-lint: ok"
