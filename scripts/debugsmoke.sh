#!/bin/sh
# debug-smoke: end-to-end determinism gate for the time-travel debugger.
#
# Captures a replication log from a deterministic simulation replay, drives
# the ftvm-debug REPL over it with a fixed command script — twice, and once
# under the other interpreter engine — and requires byte-identical output
# every time: the debugger's view of an execution is a pure function of the
# log. Then captures a second log under a different network seed and checks
# that -diff finds a first diverging branch position between two captures of
# genuinely different executions, and that -diff of a log against itself
# reports identity.
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

keyA='prog=7,size=small,mode=sched,kill=3,deliver=1,fault=none@0,net=3,reorder=1/8'
keyB='prog=8,size=small,mode=sched,kill=3,deliver=1,fault=none@0,net=3,reorder=1/8'

go run ./cmd/ftvm-sim -replay "$keyA" -capture "$tmp/a.ftlog" > /dev/null
go run ./cmd/ftvm-sim -replay "$keyB" -capture "$tmp/b.ftlog" > /dev/null

cat > "$tmp/script" <<'EOF'
pos
final
goto 0
state
goto 7
threads
locks
step 5
checksum
rstep 3
checksum
goto 40
heap
console
state
quit
EOF

go run ./cmd/ftvm-debug -every 16 "$tmp/a.ftlog" < "$tmp/script" > "$tmp/out1"
go run ./cmd/ftvm-debug -every 16 "$tmp/a.ftlog" < "$tmp/script" > "$tmp/out2"
if ! cmp -s "$tmp/out1" "$tmp/out2"; then
    echo "debug-smoke: two runs of the same script over the same log differ" >&2
    diff "$tmp/out1" "$tmp/out2" >&2 || true
    exit 1
fi

# A different checkpoint density must never change what the debugger shows.
go run ./cmd/ftvm-debug -every 64 "$tmp/a.ftlog" < "$tmp/script" > "$tmp/out3"
if ! cmp -s "$tmp/out1" "$tmp/out3"; then
    echo "debug-smoke: checkpoint interval changed the debugger's output" >&2
    diff "$tmp/out1" "$tmp/out3" >&2 || true
    exit 1
fi

# Dual-engine: the switch interpreter replays the same log to the same
# states, so the whole transcript is byte-identical too.
go run ./cmd/ftvm-debug -every 16 -dispatch switch "$tmp/a.ftlog" < "$tmp/script" > "$tmp/out4"
if ! cmp -s "$tmp/out1" "$tmp/out4"; then
    echo "debug-smoke: switch-dispatch replay differs from threaded" >&2
    diff "$tmp/out1" "$tmp/out4" >&2 || true
    exit 1
fi

go run ./cmd/ftvm-debug -diff "$tmp/a.ftlog" "$tmp/a.ftlog" > "$tmp/self"
grep -q '^identical' "$tmp/self" || {
    echo "debug-smoke: self-diff did not report identity" >&2; cat "$tmp/self" >&2; exit 1; }

if go run ./cmd/ftvm-debug -diff "$tmp/a.ftlog" "$tmp/b.ftlog" > "$tmp/ab" 2>/dev/null; then
    echo "debug-smoke: -diff of diverging logs exited zero" >&2; cat "$tmp/ab" >&2; exit 1
fi
grep -q '^diverged at position' "$tmp/ab" || {
    echo "debug-smoke: -diff did not locate a diverging position" >&2; cat "$tmp/ab" >&2; exit 1; }

echo "debug-smoke: ok"
