package ftvm

import (
	"testing"

	"repro/internal/replication"
)

// TestWarmReplicatedClean: the warm backup executes alongside the primary to
// clean completion; outputs stay exactly-once and the backup's VM holds the
// full final program state.
func TestWarmReplicatedClean(t *testing.T) {
	for _, mode := range []Mode{ModeLock, ModeSched, ModeLockInterval} {
		prog, err := CompileSource("warm", facadeProgram)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunWarmReplicated(prog, mode, nil, Options{EnvSeed: 5})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Outcome != replication.OutcomePrimaryCompleted {
			t.Fatalf("%v outcome = %v", mode, res.Outcome)
		}
		// Both primary and warm backup executed; the console line appears
		// exactly once (output dedup), and the file holds the final value.
		count := 0
		for _, l := range res.Console {
			if l == "done 900" {
				count++
			}
		}
		if count != 1 {
			t.Fatalf("%v console = %v (done×%d, want exactly once)", mode, res.Console, count)
		}
		sent := res.Env.Messages().Sent()
		if len(sent) != 1 || sent[0] != "result:900" {
			t.Fatalf("%v sent = %v", mode, sent)
		}
		data, err := res.Env.FileContents("out.dat")
		if err != nil || string(data) != "n=900" {
			t.Fatalf("%v file = %q (%v)", mode, data, err)
		}
		if res.Warm == nil || res.Warm.Replay.VMStats.Instructions == 0 {
			t.Fatalf("%v: warm backup did not execute", mode)
		}
		t.Logf("%v: warm backup executed %d instructions concurrently, caught up: %v",
			mode, res.Warm.Replay.VMStats.Instructions, res.Warm.CaughtUpAtClose)
	}
}

// warmFailoverProgram is facadeProgram with ten times the work, so the kill
// trigger reliably lands mid-run on a single core.
const warmFailoverProgram = `
class Acc { n int; }
var acc Acc;
func worker(k int) {
	for (var i int = 0; i < 3000; i = i + 1) {
		lock (acc) { acc.n = acc.n + k; }
	}
}
func main() {
	acc = new Acc;
	var fd int = fopen("out.dat", 1);
	var a thread = spawn worker(1);
	var b thread = spawn worker(2);
	join(a);
	join(b);
	fwrite(fd, "n=" + itoa(acc.n));
	fclose(fd);
	send("result:" + itoa(acc.n));
	print("done " + itoa(acc.n));
}
`

// TestWarmReplicatedFailover: kill the primary mid-run; the warm backup,
// already executing, finishes the program.
func TestWarmReplicatedFailover(t *testing.T) {
	for _, mode := range []Mode{ModeLock, ModeSched, ModeLockInterval} {
		// Retry until the kill lands (fast programs can beat the trigger).
		landed := false
		for attempt := 0; attempt < 10 && !landed; attempt++ {
			prog, err := CompileSource("warm", warmFailoverProgram)
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunWarmReplicated(prog, mode, KillAfterRecords(30), Options{
				EnvSeed:    5,
				FlushEvery: 8,
				MinQuantum: 64,
				MaxQuantum: 256,
			})
			if err != nil {
				t.Fatalf("%v: %v", mode, err)
			}
			if !res.Killed || res.Outcome != replication.OutcomePrimaryFailed {
				// The kill raced the primary's completion; try again.
				continue
			}
			landed = true
			count := 0
			for _, l := range res.Console {
				if l == "done 9000" {
					count++
				}
			}
			if count != 1 {
				t.Fatalf("%v console = %v", mode, res.Console)
			}
			sent := res.Env.Messages().Sent()
			if len(sent) != 1 || sent[0] != "result:9000" {
				t.Fatalf("%v sent = %v", mode, sent)
			}
			data, err := res.Env.FileContents("out.dat")
			if err != nil || string(data) != "n=9000" {
				t.Fatalf("%v file = %q (%v)", mode, data, err)
			}
		}
		if !landed {
			t.Errorf("%v: kill never landed in 10 attempts", mode)
		}
	}
}
