package ftvm

import (
	"strings"
	"testing"

	"repro/internal/env"
	"repro/internal/replication"
)

const facadeProgram = `
class Acc { n int; }
var acc Acc;
func worker(k int) {
	for (var i int = 0; i < 300; i = i + 1) {
		lock (acc) { acc.n = acc.n + k; }
	}
}
func main() {
	acc = new Acc;
	var fd int = fopen("out.dat", 1);
	var a thread = spawn worker(1);
	var b thread = spawn worker(2);
	join(a);
	join(b);
	fwrite(fd, "n=" + itoa(acc.n));
	fclose(fd);
	send("result:" + itoa(acc.n));
	print("done " + itoa(acc.n));
}
`

func TestCompileAndRun(t *testing.T) {
	prog, err := CompileSource("facade", facadeProgram)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, Options{EnvSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Console) != 1 || res.Console[0] != "done 900" {
		t.Fatalf("console = %v", res.Console)
	}
	if res.Stats.LocksAcquired < 600 {
		t.Fatalf("locks = %d", res.Stats.LocksAcquired)
	}
	data, err := res.Env.FileContents("out.dat")
	if err != nil || string(data) != "n=900" {
		t.Fatalf("file = %q (%v)", data, err)
	}
}

func TestRunReplicatedCleanBothModes(t *testing.T) {
	for _, mode := range []Mode{ModeLock, ModeSched} {
		prog, err := CompileSource("facade", facadeProgram)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunReplicated(prog, mode, Options{EnvSeed: 5})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Outcome != replication.OutcomePrimaryCompleted {
			t.Fatalf("%v outcome = %v", mode, res.Outcome)
		}
		if res.Primary.RecordsLogged == 0 || res.Backup.RecordsLogged == 0 {
			t.Fatalf("%v: nothing logged (%d/%d)", mode, res.Primary.RecordsLogged, res.Backup.RecordsLogged)
		}
		if res.Console[len(res.Console)-1] != "done 900" {
			t.Fatalf("%v console = %v", mode, res.Console)
		}
	}
}

func TestRunWithFailoverBothModes(t *testing.T) {
	for _, mode := range []Mode{ModeLock, ModeSched} {
		prog, err := CompileSource("facade", facadeProgram)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunWithFailover(prog, mode, KillAfterRecords(40), Options{
			EnvSeed:    5,
			FlushEvery: 8,
			MinQuantum: 64,
			MaxQuantum: 256,
		})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !res.Killed {
			t.Logf("%v: primary finished before the kill fired (timing); still validating output", mode)
		}
		if got := res.Console[len(res.Console)-1]; got != "done 900" {
			t.Fatalf("%v console = %v", mode, res.Console)
		}
		sent := res.Env.Messages().Sent()
		if len(sent) != 1 || sent[0] != "result:900" {
			t.Fatalf("%v sent = %v (exactly-once violated?)", mode, sent)
		}
		data, err := res.Env.FileContents("out.dat")
		if err != nil || string(data) != "n=900" {
			t.Fatalf("%v file = %q (%v)", mode, data, err)
		}
	}
}

func TestMeasureReplay(t *testing.T) {
	prog, err := CompileSource("facade", facadeProgram)
	if err != nil {
		t.Fatal(err)
	}
	factory := func() *env.Env { return env.New(5) }
	primary, replay, err := MeasureReplay(prog, ModeLock, Options{}, factory)
	if err != nil {
		t.Fatal(err)
	}
	if primary.Outcome != replication.OutcomePrimaryCompleted {
		t.Fatalf("outcome = %v", primary.Outcome)
	}
	if replay.Report == nil || replay.Report.RecordsInLog == 0 {
		t.Fatalf("replay = %+v", replay)
	}
	if replay.Elapsed <= 0 {
		t.Fatal("no replay timing")
	}
}

func TestAssembleDisassembleFacade(t *testing.T) {
	prog, err := Assemble("method main 0 void\n  iconst 1\n  pop\n  ret\nend")
	if err != nil {
		t.Fatal(err)
	}
	text := Disassemble(prog)
	if !strings.Contains(text, "iconst 1") {
		t.Fatalf("disassembly: %s", text)
	}
	var sb strings.Builder
	if err := EncodeProgram(&sb, prog); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeProgram(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Methods) != len(prog.Methods) {
		t.Fatal("binary round trip changed methods")
	}
}

func TestNativesAndHandlersExposed(t *testing.T) {
	if len(Natives().NonDeterministicSigs()) == 0 {
		t.Fatal("no nondeterministic natives")
	}
	if err := Handlers().RegisterAll(Natives()); err != nil {
		t.Fatal(err)
	}
}
