# Developer entry points. `make check` is the pre-merge gate: vet, the full
# test suite, and the race detector over the concurrency-heavy packages
# (replication and transport are where the primary/backup/heartbeat
# goroutines interleave).

GO ?= go

.PHONY: build test vet race check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/replication/... ./internal/transport/...

check: vet build test race

bench:
	$(GO) run ./cmd/ftvm-bench -all
