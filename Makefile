# Developer entry points. `make check` is the pre-merge gate: vet, the full
# test suite, and the race detector over the concurrency-heavy packages
# (replication and transport are where the primary/backup/heartbeat
# goroutines interleave).

GO ?= go

.PHONY: build test vet race check bench bench-smoke fuzz-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/replication/... ./internal/transport/...

# Bounded fuzzing pass: the differential smoke quota (a few hundred generated
# programs cross-checked standalone/replicated/failover) plus a short burst of
# each native fuzz target. `go test -fuzz` accepts one target per invocation.
fuzz-smoke:
	$(GO) test -short ./internal/fuzzgen
	$(GO) test -run '^$$' -fuzz FuzzProgramBinary -fuzztime 10s ./internal/bytecode
	$(GO) test -run '^$$' -fuzz FuzzAsmRoundTrip -fuzztime 10s ./internal/bytecode

check: vet build test race bench-smoke fuzz-smoke

bench:
	$(GO) run ./cmd/ftvm-bench -all

# One iteration of every Go benchmark: catches benchmarks that no longer
# compile or crash without paying for a real measurement run.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
