# Developer entry points. `make check` is the pre-merge gate: vet, the full
# test suite, and the race detector over the concurrency-heavy packages
# (replication and transport are where the primary/backup/heartbeat
# goroutines interleave).

GO ?= go

.PHONY: build test vet race check bench bench-smoke fuzz-smoke clock-lint sim-smoke view-smoke fleet-smoke consensus-smoke debug-smoke replay-seeds golden-dual

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/replication/... ./internal/transport/... ./internal/simtest/...

# Clock-injection rule (DESIGN.md): no naked time.Now/time.Sleep/... in
# library code — time comes from an injected clock.Clock, or clock.Real.*
# as an explicit wall-time opt-in.
clock-lint:
	./scripts/clocklint.sh

# Deterministic simulation smoke: a seeded sweep of kill points × channel
# faults across modes and network schedules, fully virtual-time, well under
# 30s of wall clock. Any failure prints a single -replay string.
sim-smoke:
	$(GO) run ./cmd/ftvm-sim -progs 4 -nets 2

# Three-node view-change smoke: the first primary dies, the promoted backup
# recruits the idle node via snapshot + live-tail state transfer, and
# schedules also kill the promoted primary (the n-1 sequential-failure
# space), plus stale-epoch stragglers probing the split-brain gate.
view-smoke:
	$(GO) run ./cmd/ftvm-sim -view -progs 2 -nets 1

# Sharded-fleet smoke: the multi-tenant serving fleet under its seeded
# open-loop load generator — kills mid-window, replication-hop faults, double
# kills, stale-epoch probes — with every request model-checked for
# at-most-once execution. A 100k-client run with a mid-window kill rides
# along to exercise the scale path. Fully virtual-time.
fleet-smoke:
	$(GO) run ./cmd/ftvm-sim -fleet -progs 2
	$(GO) run ./cmd/ftvm-fleet -clients 100000 -nodes 5 -shards 16 -kills n2@800ms

# Consensus-backend smoke: the VM over the 3-replica replicated log —
# leader kills mid-commit, follower kills, partition windows, stale-term
# injections, contested elections — plus the 4-column differential smoke
# (standalone / pair / pair-failover / consensus must be bit-identical;
# part of the fuzzgen short suite, pinned here so the backend cannot be
# silently dropped from the gate). Fully virtual-time.
consensus-smoke:
	$(GO) run ./cmd/ftvm-sim -consensus -progs 2 -nets 1
	$(GO) test -short -run TestDifferentialSmoke ./internal/fuzzgen

# Time-travel debugger smoke: capture a log from a deterministic replay,
# drive the ftvm-debug REPL with a fixed script (twice, at two checkpoint
# densities, and under both interpreter engines) requiring byte-identical
# transcripts, then -diff a pair of diverging captures and a log against
# itself. See scripts/debugsmoke.sh.
debug-smoke:
	./scripts/debugsmoke.sh

# Replay the regression tables of historical failure classes under the
# deterministic harness: the pair table (PR 1-3 bugs), the view-change
# table (epoch/promotion bugs), the fleet table (at-most-once /
# state-transfer bugs), and the consensus table (leader-kill-mid-commit /
# stale-term / split-vote classes). See internal/simtest/replayseeds_test.go,
# viewsweep_test.go, fleetsweep_test.go, and consensusreplayseeds_test.go.
replay-seeds:
	$(GO) test -run 'TestReplaySeeds|TestViewReplaySeeds|TestFleetReplaySeeds|TestConsensusReplaySeeds' -v ./internal/simtest

# Bounded fuzzing pass: the differential smoke quota (a few hundred generated
# programs cross-checked standalone/replicated/failover) plus a short burst of
# each native fuzz target. `go test -fuzz` accepts one target per invocation.
fuzz-smoke:
	$(GO) test -short ./internal/fuzzgen
	$(GO) test -run '^$$' -fuzz FuzzProgramBinary -fuzztime 10s ./internal/bytecode
	$(GO) test -run '^$$' -fuzz FuzzAsmRoundTrip -fuzztime 10s ./internal/bytecode

check: vet clock-lint build test race bench-smoke fuzz-smoke sim-smoke view-smoke fleet-smoke consensus-smoke debug-smoke golden-dual

# The dual-mode golden gate: the full golden program suite and the
# replication event log, bit-identical between the switch and threaded
# interpreter engines.
golden-dual:
	$(GO) test -count=1 -run 'TestDispatchDualMode' . ./internal/replication

bench:
	$(GO) run ./cmd/ftvm-bench -all

# One iteration of every Go benchmark: catches benchmarks that no longer
# compile or crash without paying for a real measurement run.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
