package ftvm

import (
	"fmt"
	"time"

	"repro/internal/env"
	"repro/internal/replication"
	"repro/internal/simtest/clock"
	"repro/internal/vm"
)

// WarmResult describes a warm-replicated run: the primary's metrics plus the
// warm backup's concurrent execution report.
type WarmResult struct {
	PrimaryStats   Stats
	PrimaryElapsed time.Duration
	Primary        replication.PrimaryMetrics
	Outcome        replication.ServeOutcome
	Killed         bool
	Warm           *replication.WarmResult
	Console        []string
	Env            *env.Env
}

// RunWarmReplicated executes prog with a primary and a *warm* backup: the
// backup executes the program concurrently, consuming the log as it arrives
// (semi-active replication — the paper's "keeping the backup updated would
// require only minor modifications", §1). With a non-nil trigger the primary
// is killed mid-run; the warm backup, already mid-execution, finishes the
// program with the usual exactly-once output guarantees.
func RunWarmReplicated(prog *Program, mode Mode, trigger KillTrigger, opts Options) (*WarmResult, error) {
	opts.fill()
	clk := opts.clock()
	environ := opts.environment()
	pEnd, bEnd := opts.newPipe()

	primary, err := replication.NewPrimary(replication.PrimaryConfig{
		Mode:                mode,
		Endpoint:            pEnd,
		Policy:              vm.NewSeededPolicy(opts.PolicySeed, opts.MinQuantum, opts.MaxQuantum),
		FlushEvery:          opts.FlushEvery,
		HeartbeatEvery:      opts.Heartbeat,
		AckTimeout:          opts.AckTimeout,
		DegradeOnBackupLoss: opts.DegradeOnBackupLoss,
		Clock:               opts.Clock,
	})
	if err != nil {
		return nil, err
	}
	machine, err := vm.New(vm.Config{
		Program:         prog,
		Env:             environ,
		Coordinator:     primary,
		GCThreshold:     opts.GCThreshold,
		MaxInstructions: opts.MaxInstructions,
		TrackProgress:   mode == ModeSched,
		Dispatch:        opts.Dispatch,
	})
	if err != nil {
		return nil, err
	}
	warm, err := replication.NewWarmBackup(replication.BackupConfig{Mode: mode, Endpoint: bEnd, Clock: opts.Clock})
	if err != nil {
		return nil, err
	}

	// Goroutines are spawned through the clock and joined via clock Flags so
	// the same structure runs under a virtual clock (see Options.Clock).
	var warmRes *replication.WarmResult
	var warmErr error
	warmDone := clock.NewFlag(clk)
	clk.Go(func() {
		defer warmDone.Set()
		_, warmRes, warmErr = warm.Run(replication.RecoverConfig{
			Program:         prog,
			Env:             environ,
			Policy:          vm.NewSeededPolicy(opts.PolicySeed^0x5DEECE66D, opts.MinQuantum, opts.MaxQuantum),
			GCThreshold:     opts.GCThreshold,
			MaxInstructions: opts.MaxInstructions,
			Dispatch:        opts.Dispatch,
		})
	})

	stopTrigger := clock.NewFlag(clk)
	if trigger != nil {
		clk.Go(func() {
			for !stopTrigger.IsSet() {
				if trigger(warm.Logged()) {
					machine.Kill()
					return
				}
				clk.Sleep(50 * time.Microsecond)
			}
		})
	}

	t0 := clk.Now()
	runErr := machine.Run()
	elapsed := clk.Since(t0)
	stopTrigger.Set()
	warmDone.Wait()

	res := &WarmResult{
		PrimaryStats:   machine.Stats(),
		PrimaryElapsed: elapsed,
		Primary:        primary.Metrics(),
		Killed:         machine.Killed(),
		Console:        environ.Console().Lines(),
		Env:            environ,
	}
	if warmRes != nil {
		res.Outcome = warmRes.Outcome
		res.Warm = warmRes
	}
	if runErr != nil && !machine.Killed() {
		return res, fmt.Errorf("primary run: %w", runErr)
	}
	if warmErr != nil {
		return res, fmt.Errorf("warm backup: %w", warmErr)
	}
	res.Console = environ.Console().Lines()
	return res, nil
}
