package ftvm

import (
	"fmt"
	"time"

	"repro/internal/env"
	"repro/internal/replication"
	"repro/internal/vm"
)

// WarmResult describes a warm-replicated run: the primary's metrics plus the
// warm backup's concurrent execution report.
type WarmResult struct {
	PrimaryStats   Stats
	PrimaryElapsed time.Duration
	Primary        replication.PrimaryMetrics
	Outcome        replication.ServeOutcome
	Killed         bool
	Warm           *replication.WarmResult
	Console        []string
	Env            *env.Env
}

// RunWarmReplicated executes prog with a primary and a *warm* backup: the
// backup executes the program concurrently, consuming the log as it arrives
// (semi-active replication — the paper's "keeping the backup updated would
// require only minor modifications", §1). With a non-nil trigger the primary
// is killed mid-run; the warm backup, already mid-execution, finishes the
// program with the usual exactly-once output guarantees.
func RunWarmReplicated(prog *Program, mode Mode, trigger KillTrigger, opts Options) (*WarmResult, error) {
	opts.fill()
	environ := opts.environment()
	pEnd, bEnd := opts.newPipe()

	primary, err := replication.NewPrimary(replication.PrimaryConfig{
		Mode:                mode,
		Endpoint:            pEnd,
		Policy:              vm.NewSeededPolicy(opts.PolicySeed, opts.MinQuantum, opts.MaxQuantum),
		FlushEvery:          opts.FlushEvery,
		HeartbeatEvery:      opts.Heartbeat,
		AckTimeout:          opts.AckTimeout,
		DegradeOnBackupLoss: opts.DegradeOnBackupLoss,
	})
	if err != nil {
		return nil, err
	}
	machine, err := vm.New(vm.Config{
		Program:         prog,
		Env:             environ,
		Coordinator:     primary,
		GCThreshold:     opts.GCThreshold,
		MaxInstructions: opts.MaxInstructions,
		TrackProgress:   mode == ModeSched,
	})
	if err != nil {
		return nil, err
	}
	warm, err := replication.NewWarmBackup(replication.BackupConfig{Mode: mode, Endpoint: bEnd})
	if err != nil {
		return nil, err
	}

	type warmDone struct {
		res *replication.WarmResult
		err error
	}
	warmCh := make(chan warmDone, 1)
	go func() {
		_, res, err := warm.Run(replication.RecoverConfig{
			Program:         prog,
			Env:             environ,
			Policy:          vm.NewSeededPolicy(opts.PolicySeed^0x5DEECE66D, opts.MinQuantum, opts.MaxQuantum),
			GCThreshold:     opts.GCThreshold,
			MaxInstructions: opts.MaxInstructions,
		})
		warmCh <- warmDone{res, err}
	}()

	stopTrigger := make(chan struct{})
	if trigger != nil {
		go func() {
			for {
				select {
				case <-stopTrigger:
					return
				case <-time.After(50 * time.Microsecond):
				}
				if trigger(warm.Logged()) {
					machine.Kill()
					return
				}
			}
		}()
	}

	t0 := time.Now()
	runErr := machine.Run()
	elapsed := time.Since(t0)
	close(stopTrigger)
	wd := <-warmCh

	res := &WarmResult{
		PrimaryStats:   machine.Stats(),
		PrimaryElapsed: elapsed,
		Primary:        primary.Metrics(),
		Killed:         machine.Killed(),
		Console:        environ.Console().Lines(),
		Env:            environ,
	}
	if wd.res != nil {
		res.Outcome = wd.res.Outcome
		res.Warm = wd.res
	}
	if runErr != nil && !machine.Killed() {
		return res, fmt.Errorf("primary run: %w", runErr)
	}
	if wd.err != nil {
		return res, fmt.Errorf("warm backup: %w", wd.err)
	}
	res.Console = environ.Console().Lines()
	return res, nil
}
